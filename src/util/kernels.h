// Runtime-dispatched SIMD micro-kernels for the distance/coverage hot paths
// (today: the exemplar-clustering oracles; any float-vector objective can
// build on them). The instruction set is detected once (cpuid) and every
// kernel is provided in AVX-512F, AVX2+FMA, SSE2 and scalar form behind one
// function table.
//
// ## The lane-reduction determinism contract
//
// Every kernel accumulates into a fixed virtual array of kLanes (= 8)
// double-precision lanes — element d of a vector always lands in lane
// d % kLanes — and the lanes are reduced in one fixed order
// (reduce_lanes()). Vector lengths that are not a multiple of kLanes are
// treated as zero-padded up to the next multiple on *every* path. Two
// facts make the scalar and SIMD paths bit-identical rather than merely
// close:
//
//  * A product of two floats widened to double is exact (24+24 < 53
//    mantissa bits), so an FMA-based dot accumulation rounds exactly like
//    mul-then-add — the AVX2 path may fuse, the scalar path need not.
//  * The squared-distance kernels square an already-rounded double
//    difference, where FMA *would* change the result, so no path fuses
//    there: all use mul-then-add in the same lane order.
//
// Consequently BDS_KERNEL=scalar, =avx2 and =avx512 produce bit-identical
// doubles on any machine, and golden selections cannot shift with the
// host's ISA. The AVX-512 tier keeps the same virtual 8-lane layout — one
// zmm accumulator holds all eight lanes and is reduced by splitting into
// the two ymm halves the AVX2 reduction already combines, so the reduction
// order is literally reduce_lanes(). The pre-kernel sequential summation
// survives as BDS_KERNEL=legacy for A/B comparison; it is numerically
// equivalent (≤ ~1e-9 relative) but not bit-identical.
//
// ## Mode selection
//
// The BDS_KERNEL environment variable picks the path, read once per
// process: auto (default — best supported ISA), avx512, avx2, sse2,
// scalar, or legacy. Requests the hardware cannot honor degrade to the
// best supported tier. Tests and benchmarks override the mode in-process
// with ForcedMode.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bds::kern {

enum class Isa { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

enum class Mode {
  kAuto = 0,
  kScalar = 1,
  kSse2 = 2,
  kAvx2 = 3,
  kAvx512 = 4,
  kLegacy = 5,
};

// The mode requested via BDS_KERNEL (or a ForcedMode override).
Mode requested_mode() noexcept;

// The ISA tier the dispatched kernels actually run: the requested mode
// clamped to what the host supports. kLegacy resolves to kScalar here; the
// legacy *formulas* are selected by callers via legacy().
Isa active_isa() noexcept;

// True when BDS_KERNEL=legacy: callers (objectives/exemplar.cpp) keep the
// pre-kernel sequential code paths alive behind this switch.
bool legacy() noexcept;

bool isa_supported(Isa isa) noexcept;
const char* isa_name(Isa isa) noexcept;
// "legacy" in legacy mode, otherwise isa_name(active_isa()).
const char* active_name() noexcept;

// RAII in-process mode override for tests and benchmarks (nests; restores
// the previous override on destruction). Do not construct concurrently
// with kernel evaluations on other threads.
class ForcedMode {
 public:
  explicit ForcedMode(Mode mode) noexcept;
  ~ForcedMode();
  ForcedMode(const ForcedMode&) = delete;
  ForcedMode& operator=(const ForcedMode&) = delete;

 private:
  int saved_;
};

// Width of the virtual lane array every kernel accumulates into.
inline constexpr std::size_t kLanes = 8;

// Candidate-tile width of gain_tile (a tile's rows stay register/L1
// resident while the cost points stream past once).
inline constexpr std::size_t kGainTile = 4;

// Canonical cost-dimension chunk length. Gains over n cost terms are the
// chunk partials summed in ascending chunk order — the same grouping
// serial and pool-parallel evaluation use, so results are independent of
// thread count (see objectives/exemplar.cpp).
inline constexpr std::size_t kCostChunk = 256;

// The one fixed lane-reduction order, shared by every path. It mirrors
// what the SIMD horizontal reductions compute: pair lane l with lane l+4,
// then the two 128-bit halves, then the final scalar add.
inline double reduce_lanes(const double lanes[kLanes]) noexcept {
  const double c0 = lanes[0] + lanes[4];
  const double c1 = lanes[1] + lanes[5];
  const double c2 = lanes[2] + lanes[6];
  const double c3 = lanes[3] + lanes[7];
  return (c0 + c2) + (c1 + c3);
}

// Row stride (in floats) PointSet pads rows to: dim rounded up to kLanes.
inline constexpr std::size_t padded_dim(std::size_t dim) noexcept {
  return (dim + kLanes - 1) / kLanes * kLanes;
}

// Squared distance via the norms+dot identity ‖v−x‖² = ‖v‖²+‖x‖²−2·v·x,
// clamped at zero so cancellation on near-identical points cannot produce
// a (tiny) negative distance. The combine is plain scalar arithmetic —
// only the dot inside is laned — so it is identical on every path.
inline double distance_from_dot(double v_norm, double x_norm,
                                double dot) noexcept {
  const double d = (v_norm + x_norm) - 2.0 * dot;
  return d < 0.0 ? 0.0 : d;
}

// One ISA's kernel set. `rows` arguments are padded matrices (stride a
// multiple of kLanes, base util::kSimdAlign-aligned — what PointSet
// stores); `a`/`b`/`x` row pointers need no alignment beyond float's.
struct KernelTable {
  // Σ_d (a[d]−b[d])², lane-accumulated. Arbitrary n and alignment.
  double (*squared_l2)(const float* a, const float* b, std::size_t n);
  // Σ_d a[d]·b[d], lane-accumulated. Arbitrary n and alignment.
  double (*dot)(const float* a, const float* b, std::size_t n);
  // One-to-many distance row over cost terms t ∈ [begin, end):
  //   out[t − begin] = distance_from_dot(norms[id(t)], x_norm,
  //                                      dot(row(id(t)), x))
  // where id(t) = ids ? ids[t] : t and row(i) = rows + i·stride.
  void (*distance_row)(const float* rows, std::size_t stride,
                       const double* norms, const std::uint32_t* ids,
                       std::size_t begin, std::size_t end, const float* x,
                       double x_norm, double* out);
  // Fused clamped min-dist improvement over a candidate tile: for each
  // candidate j < n_x (n_x ≤ kGainTile),
  //   out[j] = Σ_{t ∈ [begin,end)} max(0, min_dist[t] − d(t, xs[j]))
  // accumulated sequentially in ascending t. min_dist is indexed by cost
  // term t, norms by point id. Candidate rows xs[j] must be padded rows of
  // the same stride. Per-candidate arithmetic is independent of the tile's
  // composition, so a tile of 4 and four tiles of 1 agree bitwise.
  void (*gain_tile)(const float* rows, std::size_t stride,
                    const double* norms, const std::uint32_t* ids,
                    const double* min_dist, std::size_t begin, std::size_t end,
                    const float* const* xs, const double* x_norms,
                    std::size_t n_x, double* out);
  // Multi-query variant of gain_tile: candidate j carries its own min-dist
  // array min_dists[j] (indexed by cost term t, exactly like gain_tile's
  // min_dist), so candidates from *different concurrent queries* over one
  // PointSet can share a single streaming pass over the rows:
  //   out[j] = Σ_{t ∈ [begin,end)} max(0, min_dists[j][t] − d(t, xs[j]))
  // Per-candidate arithmetic is bit-identical to gain_tile called with
  // min_dist = min_dists[j] (and hence to a solo tile of one candidate) —
  // the property that licenses fusing unrelated queries into one tile.
  void (*gain_tile_mq)(const float* rows, std::size_t stride,
                       const double* norms, const std::uint32_t* ids,
                       const double* const* min_dists, std::size_t begin,
                       std::size_t end, const float* const* xs,
                       const double* x_norms, std::size_t n_x, double* out);
};

// The kernel set for one ISA tier (for the equivalence tests; only call
// entries whose ISA isa_supported()). On non-x86 hosts every tier aliases
// the scalar table.
const KernelTable& table_for(Isa isa) noexcept;

// The dispatched kernel set for active_isa().
const KernelTable& active_table() noexcept;

// Dispatched convenience wrappers.
inline double squared_l2(const float* a, const float* b,
                         std::size_t n) noexcept {
  return active_table().squared_l2(a, b, n);
}
inline double dot(const float* a, const float* b, std::size_t n) noexcept {
  return active_table().dot(a, b, n);
}
inline double squared_norm(const float* a, std::size_t n) noexcept {
  return active_table().dot(a, a, n);
}

}  // namespace bds::kern
