#include "util/linalg.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bds::util {

namespace {

// Index of row i's first entry in the packed lower triangle.
constexpr std::size_t row_offset(std::size_t i) noexcept {
  return i * (i + 1) / 2;
}

}  // namespace

double IncrementalCholesky::entry(std::size_t i, std::size_t j) const noexcept {
  assert(j <= i && i < n_);
  return rows_[row_offset(i) + j];
}

void IncrementalCholesky::forward_solve(std::span<double> b) const noexcept {
  assert(b.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[i];
    const double* row = rows_.data() + row_offset(i);
    for (std::size_t j = 0; j < i; ++j) acc -= row[j] * b[j];
    b[i] = acc / row[i];
  }
}

double IncrementalCholesky::conditional_variance(
    std::span<const double> col, double diag) const {
  assert(col.size() == n_);
  std::vector<double> v(col.begin(), col.end());
  forward_solve(v);
  double vtv = 0.0;
  for (const double x : v) vtv += x * x;
  return diag - vtv;
}

void IncrementalCholesky::extend(std::span<const double> col, double diag) {
  assert(col.size() == n_);
  std::vector<double> v(col.begin(), col.end());
  forward_solve(v);
  double vtv = 0.0;
  for (const double x : v) vtv += x * x;
  const double schur = diag - vtv;
  if (schur <= 0.0) {
    throw std::domain_error("IncrementalCholesky: matrix not positive definite");
  }
  rows_.insert(rows_.end(), v.begin(), v.end());
  rows_.push_back(std::sqrt(schur));
  ++n_;
}

double IncrementalCholesky::log_det() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    acc += 2.0 * std::log(rows_[row_offset(i) + i]);
  }
  return acc;
}

double cholesky_log_det(std::span<const double> matrix, std::size_t n) {
  if (matrix.size() != n * n) {
    throw std::invalid_argument("cholesky_log_det: matrix size != n*n");
  }
  IncrementalCholesky chol;
  std::vector<double> col;
  for (std::size_t i = 0; i < n; ++i) {
    col.assign(i, 0.0);
    for (std::size_t j = 0; j < i; ++j) col[j] = matrix[i * n + j];
    chol.extend(col, matrix[i * n + i]);
  }
  return chol.log_det();
}

}  // namespace bds::util
