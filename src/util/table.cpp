#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace bds::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
             c != '%' && c != 'x' && c != ',') {
      return false;
    }
  }
  return digits > 0;
}

std::string pad(const std::string& s, std::size_t width, bool right_align) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return right_align ? fill + s : s + fill;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table::Table(std::initializer_list<std::string> headers)
    : headers_(headers) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string Table::fmt_int(std::uint64_t v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ptr);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<bool> numeric(headers_.size(), true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!row[c].empty() && !looks_numeric(row[c])) numeric[c] = false;
    }
  }

  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << "  ";
    out << pad(headers_[c], widths[c], /*right_align=*/numeric[c]);
  }
  out << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << "  ";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out << "  ";
      out << pad(row[c], widths[c], numeric[c]);
    }
    out << '\n';
  }
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace bds::util
