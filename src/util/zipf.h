// Zipf-distributed integer sampling, used by the Gutenberg-style bi-gram
// dataset generator: P(X = i) ∝ 1 / (i+1)^s for i in [0, n).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace bds::util {

// Precomputed-CDF Zipf sampler. Construction is O(n); each draw is
// O(log n) via binary search on the CDF. Exact (no rejection bias), which
// matters for the distribution-shape tests.
class ZipfSampler {
 public:
  // Preconditions: n > 0, exponent >= 0 (exponent 0 degenerates to uniform).
  ZipfSampler(std::uint64_t n, double exponent);

  // Draws a rank in [0, n); rank 0 is the most likely outcome.
  std::uint64_t sample(Rng& rng) const noexcept;

  std::uint64_t size() const noexcept { return n_; }
  double exponent() const noexcept { return exponent_; }

  // Probability mass of rank i (for tests). Precondition: i < n.
  double pmf(std::uint64_t i) const noexcept;

 private:
  std::uint64_t n_;
  double exponent_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i); cdf_.back() == 1.0
};

}  // namespace bds::util
