#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bds::util {

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), exponent_(exponent), cdf_(n) {
  assert(n > 0);
  assert(exponent >= 0.0);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -exponent);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint64_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint64_t i) const noexcept {
  assert(i < n_);
  const double lo = (i == 0) ? 0.0 : cdf_[i - 1];
  return cdf_[i] - lo;
}

}  // namespace bds::util
