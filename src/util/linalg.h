// Minimal dense linear algebra for the log-determinant objective:
// column-major symmetric matrices, Cholesky factorization with incremental
// rank-one extension, and triangular solves. Deliberately small — just what
// an informative-subset oracle needs, no BLAS dependency.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bds::util {

// Lower-triangular Cholesky factor L (row-major, packed square) of a
// symmetric positive-definite matrix that grows one row/column at a time.
// Supports the log-det objective's incremental updates:
//   extend(col, diag): appends a row given the new column's cross terms
//   against the existing rows and its diagonal entry.
class IncrementalCholesky {
 public:
  std::size_t size() const noexcept { return n_; }

  // L[i][j] for j <= i < size().
  double entry(std::size_t i, std::size_t j) const noexcept;

  // Solves L y = b in-place over the current factor (forward substitution).
  // Precondition: b.size() == size().
  void forward_solve(std::span<double> b) const noexcept;

  // The Schur complement d − v^T v where L v = col: the variance of the new
  // point conditioned on the current set. Returns the value WITHOUT
  // mutating the factor. Precondition: col.size() == size().
  double conditional_variance(std::span<const double> col,
                              double diag) const;

  // Appends the new row/column. Throws std::domain_error if the matrix is
  // not positive definite (conditional variance <= 0).
  // Preconditions as conditional_variance.
  void extend(std::span<const double> col, double diag);

  // Σ 2·log(L[i][i]) = log det of the factored matrix.
  double log_det() const noexcept;

  // Heap footprint of the packed factor (worker state-bytes metering).
  std::size_t bytes() const noexcept {
    return rows_.capacity() * sizeof(double);
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> rows_;  // packed lower triangle, row-major
};

// One-shot Cholesky log-determinant of a dense symmetric positive-definite
// matrix (row-major n×n). Throws std::domain_error if not PD. Used by tests
// to cross-check the incremental path.
double cholesky_log_det(std::span<const double> matrix, std::size_t n);

}  // namespace bds::util
