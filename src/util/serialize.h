// The repo's one binary-exact text serialization API.
//
// Checkpoints (dist/engine.cpp) and the worker wire protocol (dist/wire.h)
// speak the same discipline: whitespace-separated tokens under a versioned
// header, with doubles carried as their IEEE-754 bit patterns so a decoded
// value is bit-identical to the encoded one — not merely close. This header
// holds the shared encode/decode vocabulary; formats (field order, tags,
// version numbers) stay with their owners.
//
// TokenReader is the decode side: a forward-only token stream with typed
// accessors that throw std::invalid_argument on malformed input. The
// `context` string prefixes every error ("checkpoint: truncated input",
// "wire worker 3: bad integer ...") so failures name their source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/element.h"

namespace bds::util {

// IEEE-754 bit-pattern transport for doubles (std::bit_cast both ways).
std::uint64_t double_bits(double v) noexcept;
double bits_double(std::uint64_t bits) noexcept;

// Length-prefixed vector writers: "<tag> <n> x0 x1 ..." (tagged form ends
// with a newline; untagged forms emit no surrounding whitespace so callers
// compose them into larger records).
void write_ids(std::ostream& out, const char* tag,
               const std::vector<ElementId>& ids);
void write_indices(std::ostream& out, const std::vector<std::size_t>& ids);
// Doubles as bit patterns: "<n> b0 b1 ...".
void write_reals(std::ostream& out, const std::vector<double>& values);
// Length-prefixed raw bytes ("<n> " + exactly n bytes, whitespace and all)
// — the escape hatch for embedded strings that are not single tokens
// (file paths, nested serialized documents).
void write_blob(std::ostream& out, std::string_view bytes);

class TokenReader {
 public:
  // `context` prefixes every error message thrown by this reader.
  explicit TokenReader(std::string_view text,
                       std::string context = "serialize");

  // Next whitespace-delimited token; throws on end of input.
  std::string word();
  // Consumes one token and requires it to equal `tag`.
  void expect(const char* tag);

  std::uint64_t u64();
  std::size_t size() { return static_cast<std::size_t>(u64()); }
  double real() { return bits_double(u64()); }
  bool flag() { return u64() != 0; }

  // Length-prefixed vectors (the write_* encodings above).
  std::vector<ElementId> ids(const char* tag) {
    expect(tag);
    return ids();
  }
  std::vector<ElementId> ids();
  std::vector<std::size_t> indices();
  std::vector<double> reals();
  // The write_blob encoding: length token, one separator byte, raw bytes.
  std::string blob();

  // True once every remaining character is whitespace — strict decoders
  // (the wire protocol) reject trailing garbage.
  bool at_end();

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::istringstream in_;
  std::string context_;
};

}  // namespace bds::util
