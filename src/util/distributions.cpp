#include "util/distributions.h"

#include <cassert>
#include <cmath>

namespace bds::util {

double sample_normal(Rng& rng) noexcept {
  // Marsaglia polar method; rejection loop accepts ~78.5% of candidate pairs.
  for (;;) {
    const double u = rng.next_double(-1.0, 1.0);
    const double v = rng.next_double(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Rng& rng, double mean, double sd) noexcept {
  assert(sd >= 0.0);
  return mean + sd * sample_normal(rng);
}

double sample_gamma(Rng& rng, double shape) noexcept {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double g = sample_gamma(rng, shape + 1.0);
    double u = rng.next_double();
    while (u <= 0.0) u = rng.next_double();
    return g * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = sample_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.next_double();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

namespace {

std::vector<double> normalize_gammas(std::vector<double> draws) {
  double sum = 0.0;
  for (double g : draws) sum += g;
  if (sum <= 0.0) {
    // All-zero underflow corner: fall back to the uniform simplex point.
    const double uniform = 1.0 / static_cast<double>(draws.size());
    for (double& g : draws) g = uniform;
    return draws;
  }
  for (double& g : draws) g /= sum;
  return draws;
}

}  // namespace

std::vector<double> sample_dirichlet(Rng& rng, std::size_t dim, double alpha) {
  assert(dim > 0);
  assert(alpha > 0.0);
  std::vector<double> draws(dim);
  for (double& g : draws) g = sample_gamma(rng, alpha);
  return normalize_gammas(std::move(draws));
}

std::vector<double> sample_dirichlet(Rng& rng,
                                     std::span<const double> alphas) {
  assert(!alphas.empty());
  std::vector<double> draws(alphas.size());
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    assert(alphas[i] > 0.0);
    draws[i] = sample_gamma(rng, alphas[i]);
  }
  return normalize_gammas(std::move(draws));
}

}  // namespace bds::util
