#include "serve/service.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "objectives/exemplar.h"
#include "objectives/gain_fusion.h"

namespace bds::serve {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::size_t wanted_items(const Query& q, std::size_t ground_size) {
  const std::size_t want = q.output_items != 0 ? q.output_items : q.k;
  // A direct run can never output more than the ground set holds, so a
  // summary covering min(want, n) items answers the request in full.
  return std::min(want, ground_size);
}

// Recertifies one cached summary against the mutated corpus: replays its
// solution on the new prototype for a fresh f(S), rebuilds prefix values
// and the top-gain certificate over the new ground, and keeps the entry
// (under the bumped epoch key) iff its certified ratio f(S)/UB decayed by
// less than `tolerance` relative to what the summary certified when it was
// built. A mutation that changes no gains keeps every summary; only decay
// *caused by the mutation* can evict. Returns nullptr on eviction.
std::shared_ptr<const CachedSummary> recertify_summary(
    const CachedSummary& old, std::uint64_t epoch,
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    double tolerance, std::uint64_t* evals_spent) {
  QueryKey key = old.key;
  key.epoch = epoch;
  RunResult run;
  run.algorithm = key.algorithm;
  run.solution = old.solution;
  const auto probe = seeded_clone(proto, old.solution);
  run.value = probe->value();
  *evals_spent += probe->evals();
  const auto fresh =
      build_summary(std::move(key), old.budget_k, run, proto, ground);
  *evals_spent += fresh->build_evals;
  const double old_bound = old.upper_bound(old.budget_k);
  const double old_ratio = old_bound > 0.0 ? old.value / old_bound : 1.0;
  const double bound = fresh->upper_bound(fresh->budget_k);
  const double ratio = bound > 0.0 ? fresh->value / bound : 1.0;
  if (ratio < (1.0 - tolerance) * old_ratio) {
    return nullptr;
  }
  // Keep the producing run's eval provenance: hits on the recertified
  // entry still report what a fresh run would have cost.
  CachedSummary kept = *fresh;
  kept.run_evals = old.run_evals;
  return std::make_shared<const CachedSummary>(std::move(kept));
}

}  // namespace

const char* serve_outcome_name(ServeOutcome outcome) noexcept {
  switch (outcome) {
    case ServeOutcome::kHit:
      return "hit";
    case ServeOutcome::kCoalesced:
      return "coalesced";
    case ServeOutcome::kComputed:
      return "computed";
    case ServeOutcome::kDegraded:
      return "degraded";
    case ServeOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

SummaryService::SummaryService(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      pool_(options.threads) {}

SummaryService::~SummaryService() = default;

void SummaryService::add_corpus(std::string name, std::string objective,
                                std::shared_ptr<SubmodularOracle> proto,
                                std::vector<ElementId> ground) {
  register_corpus(std::move(name), std::move(objective), std::move(proto),
                  std::move(ground), nullptr, {});
}

void SummaryService::add_dynamic_corpus(
    std::string name, std::string objective,
    std::shared_ptr<data::DynamicCorpus> corpus,
    data::DynamicOracleOptions oracle_options) {
  if (!corpus) {
    throw std::invalid_argument("add_dynamic_corpus: null corpus");
  }
  std::shared_ptr<SubmodularOracle> proto =
      data::make_dynamic_oracle(*corpus, objective, oracle_options);
  // Sequence the ground computation before std::move(corpus): argument
  // evaluation order is unspecified.
  std::vector<ElementId> ground = corpus->live_ground();
  register_corpus(std::move(name), std::move(objective), std::move(proto),
                  std::move(ground), std::move(corpus), oracle_options);
}

void SummaryService::register_corpus(
    std::string name, std::string objective,
    std::shared_ptr<SubmodularOracle> proto, std::vector<ElementId> ground,
    std::shared_ptr<data::DynamicCorpus> dynamic,
    data::DynamicOracleOptions oracle_options) {
  if (!proto || proto->ground_size() == 0) {
    throw std::invalid_argument("add_corpus: empty oracle prototype");
  }
  if (!proto->current_set().empty()) {
    throw std::invalid_argument(
        "add_corpus: prototype must be a fresh (empty-set) oracle");
  }
  const ObjectiveSpec& spec = require_objective(objective);
  if (ground.empty()) {
    ground.resize(proto->ground_size());
    for (std::size_t i = 0; i < ground.size(); ++i) {
      ground[i] = static_cast<ElementId>(i);
    }
  }
  // Exemplar corpora share kernel tiles across concurrent cache-miss runs.
  if (auto* exemplar = dynamic_cast<ExemplarOracle*>(proto.get());
      exemplar != nullptr && !exemplar->fusion()) {
    exemplar->attach_fusion(
        std::make_shared<GainFusionGroup>(exemplar->points()));
  }

  std::lock_guard<std::mutex> lk(mu_);
  CorpusEntry entry;
  entry.objective = std::move(objective);
  entry.cacheable = spec.cache_safe;
  entry.proto = std::move(proto);
  entry.ground =
      std::make_shared<const std::vector<ElementId>>(std::move(ground));
  if (spec.cache_safe) {
    entry.bounds = std::make_shared<detail::SingletonBoundCache>();
  }
  entry.epoch = dynamic ? dynamic->epoch() : 0;
  entry.dynamic = std::move(dynamic);
  entry.oracle_options = oracle_options;
  if (entry.dynamic) entry.proto->stamp_corpus_epoch(entry.epoch);
  if (!corpora_.emplace(std::move(name), std::move(entry)).second) {
    throw std::invalid_argument("add_corpus: corpus already registered");
  }
}

std::vector<std::string> SummaryService::corpus_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(corpora_.size());
  for (const auto& [name, entry] : corpora_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

SummaryService::CorpusSnapshot SummaryService::snapshot_corpus(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = corpora_.find(name);
  if (it != corpora_.end()) {
    const CorpusEntry& entry = it->second;
    CorpusSnapshot snap;
    snap.objective = entry.objective;
    snap.cacheable = entry.cacheable;
    snap.proto = entry.proto;
    snap.ground = entry.ground;
    snap.bounds = entry.bounds;
    snap.epoch = entry.epoch;
    return snap;
  }
  std::ostringstream message;
  message << "unknown corpus '" << name << "'; known:";
  std::vector<std::string> names;
  for (const auto& [known, entry] : corpora_) names.push_back(known);
  std::sort(names.begin(), names.end());
  for (const auto& known : names) message << " " << known;
  throw std::invalid_argument(message.str());
}

std::uint64_t SummaryService::corpus_epoch(const std::string& name) const {
  return snapshot_corpus(name).epoch;
}

SummaryService::MutationOutcome SummaryService::corpus_insert(
    const std::string& name, std::vector<std::uint32_t> items) {
  data::Mutation m;
  m.kind = data::MutationKind::kInsert;
  m.items = std::move(items);
  return apply_mutation(name, std::move(m));
}

SummaryService::MutationOutcome SummaryService::corpus_erase(
    const std::string& name, ElementId id) {
  data::Mutation m;
  m.kind = data::MutationKind::kErase;
  m.id = id;
  return apply_mutation(name, std::move(m));
}

SummaryService::MutationOutcome SummaryService::apply_mutation(
    const std::string& name, data::Mutation m) {
  // One mutation at a time end to end (corpus apply + recertify pass);
  // queries proceed concurrently off their snapshots.
  std::lock_guard<std::mutex> mlk(mutate_mu_);

  MutationOutcome out;
  std::shared_ptr<SubmodularOracle> proto;
  std::shared_ptr<const std::vector<ElementId>> ground;
  std::shared_ptr<data::DynamicCorpus> corpus;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = corpora_.find(name);
    if (it == corpora_.end()) {
      throw std::invalid_argument("unknown corpus '" + name + "'");
    }
    CorpusEntry& entry = it->second;
    if (!entry.dynamic) {
      throw std::invalid_argument(
          "corpus '" + name +
          "' is frozen; register it via add_dynamic_corpus to mutate");
    }
    corpus = entry.dynamic;
    // Inserts get the next ground id; the caller's id field is ignored.
    if (m.kind == data::MutationKind::kInsert) {
      m.id = static_cast<ElementId>(corpus->size());
    }
    corpus->apply(m);
    const data::Mutation& applied = corpus->log().back();
    out.epoch = corpus->epoch();
    out.id = applied.id;

    // Copy-on-mutate: the fresh prototype replaces the entry's handle; any
    // in-flight run keeps the snapshot it took at submit.
    if (entry.proto->supports_dynamic_updates()) {
      std::shared_ptr<SubmodularOracle> next = entry.proto->clone();
      if (applied.kind == data::MutationKind::kInsert) {
        next->apply_insert(applied.id, applied.items, out.epoch);
      } else {
        next->apply_erase(applied.id, out.epoch);
      }
      entry.proto = std::move(next);
    } else {
      entry.proto = data::make_dynamic_oracle(*corpus, entry.objective,
                                              entry.oracle_options);
      out.oracle_rebuilt = true;
      ++stats_.oracle_rebuilds;
    }
    entry.ground =
        std::make_shared<const std::vector<ElementId>>(corpus->live_ground());
    // Singleton gains shift with the ground set; start a fresh warm-start
    // cache rather than serving stale bounds (still never changes bits —
    // bounds only order scans).
    if (entry.cacheable) {
      entry.bounds = std::make_shared<detail::SingletonBoundCache>();
    }
    entry.epoch = out.epoch;
    ++stats_.mutations;
    proto = entry.proto;
    ground = entry.ground;
  }

  // Invalidate-or-recertify, outside mu_: pull every cached summary for
  // this corpus, keep the ones whose recomputed certificate decayed less
  // than recertify_epsilon (re-keyed at the new epoch), drop the rest.
  std::uint64_t spent = 0;
  const bool ids_stable = corpus->ids_stable();
  for (auto& old : cache_.take_corpus(name)) {
    std::shared_ptr<const CachedSummary> fresh;
    bool addressable = ids_stable;
    if (addressable && m.kind == data::MutationKind::kErase) {
      for (const ElementId x : old->solution) {
        if (!corpus->is_live(x)) {
          addressable = false;  // a selected set was tombstoned
          break;
        }
      }
    }
    if (addressable) {
      fresh = recertify_summary(*old, out.epoch, *proto, *ground,
                                options_.recertify_epsilon, &spent);
    }
    if (fresh) {
      cache_.insert(std::move(fresh));
      ++out.summaries_recertified;
    } else {
      ++out.summaries_invalidated;
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  stats_.summaries_recertified += out.summaries_recertified;
  stats_.summaries_invalidated += out.summaries_invalidated;
  stats_.evals_spent += spent;
  if (options_.record_query_spans) {
    dist::QuerySpan span;
    span.query_id = next_query_id_++;
    span.tenant = "mutation";
    span.outcome = m.kind == data::MutationKind::kInsert ? "mutate-insert"
                                                         : "mutate-erase";
    span.epoch = out.epoch;
    span.summaries_recertified = out.summaries_recertified;
    span.summaries_invalidated = out.summaries_invalidated;
    spans_.push_back(std::move(span));
  }
  return out;
}

ServeResult SummaryService::serve_from_summary(const CachedSummary& summary,
                                               const Query& q,
                                               ServeOutcome outcome) const {
  const std::size_t items = summary.items_for(q.k, q.output_items);
  ServeResult result;
  result.outcome = outcome;
  result.solution.assign(summary.solution.begin(),
                         summary.solution.begin() +
                             static_cast<std::ptrdiff_t>(items));
  // Full-length answers return the producing run's value verbatim; shorter
  // prefixes the replayed cumulative value at that length (serve/cache.h).
  result.value = items == summary.solution.size() ? summary.value
                                                  : summary.prefix_value[items];
  result.budget_k = std::min(q.k, summary.budget_k);
  result.upper_bound = summary.upper_bound(result.budget_k);
  result.epoch = summary.key.epoch;
  return result;
}

void SummaryService::record_span(const Query& q, const ServeResult& result) {
  // Caller holds mu_.
  dist::QuerySpan span;
  span.query_id = next_query_id_++;
  span.tenant = q.tenant;
  span.outcome = serve_outcome_name(result.outcome);
  span.budget_k = q.k;
  span.items = result.solution.size();
  span.evals_avoided = result.evals_avoided;
  span.queue_seconds = result.queue_seconds;
  span.run_seconds = result.run_seconds;
  span.total_seconds = result.total_seconds;
  span.epoch = result.epoch;
  spans_.push_back(std::move(span));
}

ServeResult SummaryService::query(const Query& q) {
  const auto t0 = Clock::now();
  require_algorithm(q.algorithm);  // throws listing the known names
  const CorpusSnapshot corpus = snapshot_corpus(q.corpus);

  const QueryKey key =
      make_key(q.corpus, corpus.objective, q.algorithm, q.epsilon, q.rounds,
               q.machines, q.runtime, corpus.epoch);
  const bool certified = corpus.cacheable && cache_safe(q.runtime);
  const std::size_t min_items = wanted_items(q, corpus.ground->size());

  // Fast path: certified hits answer synchronously, bypassing admission.
  if (certified) {
    if (auto summary = cache_.lookup(key, q.k, min_items)) {
      ServeResult result = serve_from_summary(*summary, q, ServeOutcome::kHit);
      result.total_seconds = seconds_since(t0);
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.queries;
      ++stats_.hits;
      stats_.evals_saved += summary->run_evals;
      if (options_.record_query_spans) record_span(q, result);
      return result;
    }
  }

  FlightPtr flight;
  {
    std::unique_lock<std::mutex> lk(mu_);

    // Coalesce onto a strictly identical in-flight computation.
    if (certified) {
      for (const FlightPtr& f : in_flight_) {
        if (f->key == key && f->k == q.k &&
            f->output_items == q.output_items) {
          FlightPtr target = f;
          cv_.wait(lk, [&] { return target->done; });
          if (target->error) std::rethrow_exception(target->error);
          ServeResult result =
              serve_from_summary(*target->summary, q, ServeOutcome::kCoalesced);
          result.queue_seconds = target->queue_seconds;
          result.run_seconds = target->run_seconds;
          result.total_seconds = seconds_since(t0);
          ++stats_.queries;
          ++stats_.coalesced;
          stats_.evals_saved += target->summary->run_evals;
          if (options_.record_query_spans) record_span(q, result);
          return result;
        }
      }
    }

    // Admission control: shed when the backlog is full.
    auto& tenant_queue = queued_[q.tenant];
    if (queued_total_ >= options_.max_queue ||
        tenant_queue.size() >= options_.max_per_tenant) {
      ServeResult result;
      if (options_.allow_degraded && certified) {
        if (auto partial = cache_.peek(key)) {
          // Graceful degradation: the best certified prefix we already
          // have, marked as such (its bound covers min(k, cached budget)).
          result = serve_from_summary(*partial, q, ServeOutcome::kDegraded);
          result.total_seconds = seconds_since(t0);
          ++stats_.queries;
          ++stats_.degraded;
          stats_.evals_saved += partial->run_evals;
          if (options_.record_query_spans) record_span(q, result);
          return result;
        }
      }
      result.outcome = ServeOutcome::kRejected;
      result.budget_k = q.k;
      result.total_seconds = seconds_since(t0);
      ++stats_.queries;
      ++stats_.rejected;
      if (options_.record_query_spans) record_span(q, result);
      return result;
    }

    // Admit: enqueue into the tenant's FIFO, one drain task on the pool.
    flight = std::make_shared<Flight>();
    flight->key = key;
    flight->k = q.k;
    flight->output_items = q.output_items;
    flight->tenant = q.tenant;
    flight->certified = certified;
    flight->runtime = q.runtime;
    flight->corpus = corpus;
    flight->enqueued = Clock::now();
    if (std::find(tenant_order_.begin(), tenant_order_.end(), q.tenant) ==
        tenant_order_.end()) {
      tenant_order_.push_back(q.tenant);
    }
    tenant_queue.push_back(flight);
    ++queued_total_;
    if (certified) in_flight_.push_back(flight);
  }
  pool_.submit([this] { drain_one(); });

  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return flight->done; });
  if (flight->error) std::rethrow_exception(flight->error);

  ServeResult result;
  std::uint64_t saved = 0;
  std::uint64_t spent = 0;
  if (flight->summary) {
    // Certified: serve from the summary (freshly built, or the cache entry
    // the double-check found — then the run was saved, not spent).
    const ServeOutcome outcome = flight->served_from_cache
                                     ? ServeOutcome::kCoalesced
                                     : ServeOutcome::kComputed;
    result = serve_from_summary(*flight->summary, q, outcome);
    if (flight->served_from_cache) {
      saved = flight->summary->run_evals;
    } else {
      spent = flight->summary->run_evals + flight->summary->build_evals;
    }
  } else {
    result = flight->raw;  // non-certified: the run's output, verbatim
    spent = flight->spent;
  }
  result.queue_seconds = flight->queue_seconds;
  result.run_seconds = flight->run_seconds;
  result.total_seconds = seconds_since(t0);
  result.evals_avoided = flight->avoided;
  ++stats_.queries;
  if (result.outcome == ServeOutcome::kCoalesced) {
    ++stats_.coalesced;
  } else {
    ++stats_.computed;
  }
  stats_.evals_saved += saved;
  stats_.evals_spent += spent;
  if (options_.record_query_spans) record_span(q, result);
  return result;
}

void SummaryService::drain_one() {
  FlightPtr flight;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Round-robin over tenants: each drain task takes the next non-empty
    // tenant's oldest flight, so a burst from one tenant interleaves with
    // everyone else's queries.
    for (std::size_t i = 0; i < tenant_order_.size(); ++i) {
      const std::size_t slot = (rr_cursor_ + i) % tenant_order_.size();
      auto& queue = queued_[tenant_order_[slot]];
      if (queue.empty()) continue;
      flight = queue.front();
      queue.pop_front();
      --queued_total_;
      rr_cursor_ = (slot + 1) % tenant_order_.size();
      break;
    }
  }
  if (!flight) return;
  flight->queue_seconds = seconds_since(flight->enqueued);
  execute(flight);
}

void SummaryService::execute(const FlightPtr& flight) {
  std::shared_ptr<const CachedSummary> summary;
  ServeResult raw;
  std::exception_ptr error;
  bool from_cache = false;
  double run_seconds = 0.0;
  std::uint64_t spent = 0;
  std::uint64_t avoided = 0;

  try {
    const CorpusSnapshot& corpus = flight->corpus;
    if (flight->certified) {
      // Double-check: an earlier flight may have published while this one
      // queued, turning the miss into a free answer.
      const std::size_t want = flight->output_items != 0 ? flight->output_items
                                                         : flight->k;
      summary = cache_.lookup(flight->key, flight->k,
                              std::min(want, corpus.ground->size()));
      from_cache = summary != nullptr;
    }
    if (!summary) {
      AlgorithmParams params;
      params.k = flight->k;
      params.output_items = flight->output_items;
      params.rounds = flight->key.rounds;
      params.epsilon = flight->key.epsilon;
      params.machines = flight->key.machines;

      // Certified runs share the corpus's singleton-gain cache: the first
      // run over a corpus pays the round-0 scans, later ones warm-start
      // from them. Attaching never changes selections (bound_heap.h), so
      // the cache's bitwise determinism contract is untouched.
      RuntimeOptions runtime = flight->runtime;
      if (flight->certified && corpus.bounds) {
        runtime.singleton_bounds = corpus.bounds;
      }

      const auto run_start = Clock::now();
      const RunResult run = run_distributed(flight->key.algorithm,
                                            *corpus.proto, *corpus.ground,
                                            runtime, params);
      run_seconds = seconds_since(run_start);
      avoided = run.stats.total_evals_avoided();

      if (flight->certified) {
        summary = build_summary(flight->key, flight->k, run, *corpus.proto,
                                *corpus.ground);
        cache_.insert(summary);
      } else {
        raw.outcome = ServeOutcome::kComputed;
        raw.solution = run.solution;
        raw.value = run.value;
        raw.upper_bound = corpus.proto->max_value();
        raw.budget_k = flight->k;
        raw.epoch = corpus.epoch;
        spent = run.stats.total_evals() + run.stats.total_merge_evals();
      }
    }
  } catch (...) {
    error = std::current_exception();
  }

  std::lock_guard<std::mutex> lk(mu_);
  flight->summary = std::move(summary);
  flight->raw = std::move(raw);
  flight->error = error;
  flight->served_from_cache = from_cache;
  flight->run_seconds = run_seconds;
  flight->spent = spent;
  flight->avoided = avoided;
  flight->done = true;
  in_flight_.erase(
      std::remove(in_flight_.begin(), in_flight_.end(), flight),
      in_flight_.end());
  cv_.notify_all();
}

ServiceStats SummaryService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t SummaryService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_total_;
}

std::vector<dist::QuerySpan> SummaryService::drain_query_spans() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<dist::QuerySpan> out;
  out.swap(spans_);
  return out;
}

}  // namespace bds::serve
