// The bicriteria summary cache behind the serving layer (serve/service.h).
//
// The paper's bicriteria structure is what makes caching sound: a
// bicriteria output for budget k is a *value-certified superset* — it
// carries enough information to answer any budget k' ≤ k by prefix
// truncation, with a quality certificate, without touching the oracle.
// A CachedSummary therefore stores, for one (corpus, objective, algorithm,
// ε, r, certified-runtime) configuration:
//
//  * the full solution in selection order, verbatim from the producing run;
//  * prefix values f(first i items) for every i, computed by replaying the
//    selection order on a clone of the same oracle prototype — the same
//    add() accumulation the run itself performed, so prefix answers are
//    bit-identical to the corresponding prefix of a direct run at the
//    cached configuration (and the full-length answer is the run's own
//    value, verbatim);
//  * the upper-bound certificate: f(OPT_k) ≤ f(S) + Σ(top-k marginal gains
//    Δ(x, S)) holds for ANY S by monotone submodularity (core/upper_bound.h),
//    so storing the sorted top-budget_k gains as prefix sums gives an O(1)
//    certified bound UB(k') for every k' ≤ budget_k.
//
// ## What "bit-identical" means across budgets
//
// Distributed runs are not budget-prefix-consistent: the machine count
// (⌈√(n/k)⌉ by default) and per-round budgets depend on k, so a fresh run
// at budget k' selects in a different order than the run at k. The serving
// contract is therefore: an exact-budget hit returns the direct run's
// output verbatim (bitwise), and a k' < k answer is bitwise equal to the
// corresponding prefix of the direct run at the *cached* configuration,
// with its certified bound computed for k'. test_serve_cache pins both.
//
// ## Cache key
//
// QueryKey holds exactly the fields that can change a certified answer:
// corpus, objective, algorithm, ε, rounds, machines, and the
// result-affecting RuntimeOptions fields (seed, worker_oracle,
// incremental_gains, parallel_central). Budget k is deliberately NOT part
// of the key — that is the reuse. threads / tracing / checkpoint sinks are
// excluded because the determinism substrate guarantees they cannot change
// selections. Runs under an active fault plan, a resume, or a round halt
// are not certified (cache_safe() is false) and bypass the cache entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/registry.h"
#include "core/runtime_options.h"
#include "util/element.h"

namespace bds::serve {

// The certified configuration fingerprint. Two queries with equal keys are
// answerable from one summary (at any budget ≤ the cached one).
struct QueryKey {
  std::string corpus;
  // Corpus epoch (data/dynamic.h) the summary was certified against.
  // Frozen corpora stay at 0. A mutation bumps the corpus epoch, so stale
  // summaries simply stop matching — no blanket flush; the mutation path
  // recertifies or drops them explicitly (SummaryService).
  std::uint64_t epoch = 0;
  std::string objective;
  std::string algorithm;
  double epsilon = 0.1;
  std::size_t rounds = 1;
  std::size_t machines = 0;  // 0 = algorithm default
  std::uint64_t seed = 1;
  WorkerOracleMode worker_oracle = WorkerOracleMode::kShardView;
  bool incremental_gains = false;
  bool parallel_central = false;

  bool operator==(const QueryKey&) const = default;
};

struct QueryKeyHash {
  std::size_t operator()(const QueryKey& key) const noexcept;
};

// True when `runtime` produces certified, reusable results: no active
// fault plan (degraded runs are not supersets of anything), no resume, no
// round halt. Unsafe runs are computed fresh and never cached.
bool cache_safe(const RuntimeOptions& runtime) noexcept;

// Derives the key from a query's configuration + runtime. `epoch` is the
// corpus's current epoch (0 for frozen corpora).
QueryKey make_key(std::string corpus, std::string objective,
                  std::string algorithm, double epsilon, std::size_t rounds,
                  std::size_t machines, const RuntimeOptions& runtime,
                  std::uint64_t epoch = 0);

// One cached bicriteria summary with its certificate.
struct CachedSummary {
  QueryKey key;
  std::size_t budget_k = 0;  // budget the producing run was computed for

  std::vector<ElementId> solution;  // selection order, verbatim
  double value = 0.0;               // producing run's value, verbatim
  // prefix_value[i] = f(first i items), i ∈ [0, solution.size()]; computed
  // by ordered replay on a clone of the oracle prototype.
  std::vector<double> prefix_value;

  // Certificate: prefix sums of the sorted (descending) top-budget_k
  // marginal gains Δ(x, solution); top_gain_prefix[j] = sum of the largest
  // j gains, j ∈ [0, budget_k].
  std::vector<double> top_gain_prefix;
  double max_value = 0.0;  // oracle's trivial cap (min'ed into the bound)

  std::uint64_t run_evals = 0;    // oracle evals the producing run charged
  std::uint64_t build_evals = 0;  // replay + certificate evals on top

  // Items to serve for a query asking budget k with `output_items`
  // requested items (0 → k), clamped to what is stored.
  std::size_t items_for(std::size_t k, std::size_t output_items) const noexcept;

  // Certified f(OPT_k') bound for any k' ≤ budget_k (clamped):
  // min(max_value, value + top_gain_prefix[k']).
  double upper_bound(std::size_t k) const noexcept;
};

// Builds the entry from a finished run: ordered replay for prefix values
// and the top-gain certificate scan over `ground`. `proto` must be the
// same fresh (empty-set) prototype the run started from. O(|ground|)
// oracle evaluations on clones — the prototype's accounting is untouched.
std::shared_ptr<const CachedSummary> build_summary(
    QueryKey key, std::size_t budget_k, const RunResult& run,
    const SubmodularOracle& proto, std::span<const ElementId> ground);

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        // no entry, or entry budget too small
  std::uint64_t insertions = 0;
  std::uint64_t replacements = 0;  // same key, larger budget took over
  std::uint64_t evictions = 0;     // LRU capacity pressure
};

// Thread-safe LRU map QueryKey → CachedSummary, one entry per key (an
// insert with a larger budget replaces the smaller one; a smaller budget
// is dropped — the bigger summary already answers those queries).
class SummaryCache {
 public:
  explicit SummaryCache(std::size_t capacity = 64);

  // An entry usable for budget k (entry.budget_k ≥ k) that stores at least
  // `min_items` items (so a request for more output than cached never gets
  // silently truncated), or nullptr.
  std::shared_ptr<const CachedSummary> lookup(const QueryKey& key,
                                              std::size_t k,
                                              std::size_t min_items = 0);
  // The entry for the key regardless of budget (the load-shed path serves
  // whatever prefix is available, marked degraded). Does not count as a
  // hit or miss and does not touch LRU order.
  std::shared_ptr<const CachedSummary> peek(const QueryKey& key) const;

  void insert(std::shared_ptr<const CachedSummary> entry);

  // Removes and returns every entry for `corpus` (any epoch) — the
  // mutation path takes them out, recertifies each against the new epoch,
  // and reinserts the survivors under the bumped key. Not a lookup: LRU
  // order and hit/miss stats are untouched.
  std::vector<std::shared_ptr<const CachedSummary>> take_corpus(
      const std::string& corpus);

  std::size_t size() const;
  CacheStats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const CachedSummary> entry;
    std::uint64_t last_used = 0;
  };

  void evict_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<QueryKey, Slot, QueryKeyHash> entries_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace bds::serve
