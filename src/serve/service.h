// bds::serve::SummaryService — a long-running, multi-tenant front end over
// registry::run_distributed.
//
// The workload it targets: many clients ask for summaries of the same few
// corpora with the same objective/ε/r but different budgets k. Three layers
// turn that from "one full distributed run per request" into mostly O(k)
// work per request:
//
//  1. **Summary cache** (serve/cache.h). A bicriteria answer for budget k
//     certifies every budget k' ≤ k; hits are answered synchronously at
//     submit time by prefix truncation — they never touch the admission
//     queue, which is what makes cached latency a different regime from
//     uncached latency (bench_serve measures the gap).
//
//  2. **Admission queue.** Misses are admitted into a bounded queue drained
//     round-robin across tenants by dist::ThreadPool tasks, so one chatty
//     tenant cannot starve the rest. Strictly identical in-flight queries
//     coalesce onto one computation (N concurrent clients, one run — each
//     gets the bitwise-identical answer). When the queue is full the
//     service reuses the graceful-degradation idea from dist/faults: if a
//     smaller summary for the same configuration exists, serve its prefix
//     marked kDegraded rather than failing; otherwise kRejected.
//
//  3. **Cross-query oracle fusion** (objectives/gain_fusion.h). Misses that
//     share one PointSet attach a GainFusionGroup at corpus registration,
//     so concurrent cache-miss runs batch their gain scans into shared
//     multi-query kernel tiles — without changing any run's bits.
//
// Determinism contract: a kHit / kCoalesced / kComputed answer at the exact
// cached parameters is bitwise equal to a direct run_distributed call; a
// budget-k' hit is bitwise equal to the length-k' prefix of the direct run
// at the cached configuration, with a certified upper bound for k'
// (serve/cache.h explains why that is the strongest claim possible).
// Queries whose runtime is not cache_safe (fault injection, resume, round
// halt) compute fresh every time and never populate the cache.
//
// query() blocks until the answer is ready; call it from client threads,
// never from the service's own pool.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/registry.h"
#include "data/dynamic.h"
#include "dist/thread_pool.h"
#include "dist/trace.h"
#include "serve/cache.h"

namespace bds::serve {

struct ServiceOptions {
  std::size_t threads = 0;         // admission pool; 0 = hardware default
  std::size_t cache_capacity = 64; // summaries kept (LRU beyond this)
  std::size_t max_queue = 64;      // admitted-but-unstarted queries, global
  std::size_t max_per_tenant = 16; // per-tenant slice of the queue
  // Full queue: serve a smaller cached summary for the same configuration
  // as a degraded answer instead of rejecting (when one exists).
  bool allow_degraded = true;
  bool record_query_spans = false;  // keep dist::QuerySpan per query
  // Mutation path: a cached summary survives an epoch bump when its
  // recomputed certificate f(S)/UB decayed by less than recertify_epsilon
  // relative to the ratio it certified at build time (invalidate-or-
  // recertify instead of blanket-flushing). Gain-neutral mutations keep
  // every summary.
  double recertify_epsilon = 0.1;
};

// One request. `tenant` is the fairness bucket; `runtime` carries the
// certified execution knobs (seed, worker oracle, ...) plus any
// non-certified ones (faults, resume) that force a fresh computation.
struct Query {
  std::string corpus;
  std::string algorithm = "bicriteria";
  std::size_t k = 10;
  std::size_t output_items = 0;  // 0 → k (AlgorithmParams semantics)
  double epsilon = 0.1;
  std::size_t rounds = 1;
  std::size_t machines = 0;
  std::string tenant = "default";
  RuntimeOptions runtime;
};

enum class ServeOutcome {
  kHit = 0,        // served synchronously from the cache
  kCoalesced = 1,  // waited on an identical in-flight computation
  kComputed = 2,   // admitted, computed (and cached when certified)
  kDegraded = 3,   // load shed: smaller cached prefix served
  kRejected = 4,   // load shed: nothing cached to degrade to
};

const char* serve_outcome_name(ServeOutcome outcome) noexcept;

struct ServeResult {
  ServeOutcome outcome = ServeOutcome::kComputed;
  std::vector<ElementId> solution;  // served items, selection order
  double value = 0.0;               // f(solution), bitwise per the contract
  // Certified bound on f(OPT_k) when the answer came from a summary
  // (min(k, summary budget) for kDegraded); the oracle's trivial max_value
  // for fresh non-certified computations.
  double upper_bound = 0.0;
  std::size_t budget_k = 0;      // budget the answer certifies
  double queue_seconds = 0.0;    // admission wait (0 for hits)
  double run_seconds = 0.0;      // computation time (0 for hits)
  double total_seconds = 0.0;    // submit → answer
  // Gain evaluations this query's own run skipped via lazy bounds
  // (core/bound_heap.h), including the cross-query singleton warm start.
  // Zero for answers that ran no computation (hits, coalesced, degraded).
  std::uint64_t evals_avoided = 0;
  // Corpus epoch this answer is certified for (0 for frozen corpora).
  std::uint64_t epoch = 0;
};

struct ServiceStats {
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t computed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  // Mutation endpoints (dynamic corpora).
  std::uint64_t mutations = 0;
  std::uint64_t summaries_recertified = 0;  // epoch-bumped, kept
  std::uint64_t summaries_invalidated = 0;  // decayed past ε or unaddressable
  std::uint64_t oracle_rebuilds = 0;  // syncs that took the rebuild fallback
  // Oracle evaluations a direct run would have spent on queries answered
  // without one (hits + coalesced waiters + degraded), vs. evaluations the
  // service actually charged (runs + certificate builds).
  std::uint64_t evals_saved = 0;
  std::uint64_t evals_spent = 0;

  double hit_rate() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(hits + coalesced) /
                              static_cast<double>(queries);
  }
};

class SummaryService {
 public:
  explicit SummaryService(ServiceOptions options = {});
  ~SummaryService();

  SummaryService(const SummaryService&) = delete;
  SummaryService& operator=(const SummaryService&) = delete;

  // Registers a corpus under `name`. `objective` must be a registered
  // objective (core/registry.h, require_objective); its cache_safe flag
  // gates whether this corpus's results may be cached. `proto` is the
  // fresh (empty-set) oracle prototype every run starts from; an
  // ExemplarOracle prototype gets a GainFusionGroup attached so concurrent
  // cache-miss runs share kernel tiles. `ground` defaults to the identity
  // over proto->ground_size().
  void add_corpus(std::string name, std::string objective,
                  std::shared_ptr<SubmodularOracle> proto,
                  std::vector<ElementId> ground = {});

  // Registers a *mutable* corpus: the prototype is built through
  // data::make_dynamic_oracle at the corpus's current epoch, the ground is
  // its live id set, and the corpus_insert / corpus_erase endpoints become
  // usable. The service owns the mutation lock: mutate only through those
  // endpoints once registered.
  void add_dynamic_corpus(std::string name, std::string objective,
                          std::shared_ptr<data::DynamicCorpus> corpus,
                          data::DynamicOracleOptions oracle_options = {});

  // Outcome of one mutation: the bumped epoch plus what the
  // invalidate-or-recertify pass did to this corpus's cached summaries.
  struct MutationOutcome {
    std::uint64_t epoch = 0;
    ElementId id = 0;  // id assigned (insert) or tombstoned (erase)
    std::size_t summaries_recertified = 0;
    std::size_t summaries_invalidated = 0;
    bool oracle_rebuilt = false;  // rebuild fallback vs in-place O(degree)
  };

  // Mutation endpoints. Both bump the corpus epoch, refresh the prototype
  // (in place when the oracle supports dynamic updates, rebuild otherwise
  // — in-flight runs keep their snapshot either way), then recertify or
  // drop every cached summary of this corpus instead of blanket-flushing.
  // Throw std::invalid_argument for an unknown or non-dynamic corpus and
  // propagate DynamicCorpus validation errors.
  MutationOutcome corpus_insert(const std::string& name,
                                std::vector<std::uint32_t> items);
  MutationOutcome corpus_erase(const std::string& name, ElementId id);

  // Current epoch of a registered corpus (0 for frozen ones).
  std::uint64_t corpus_epoch(const std::string& name) const;

  std::vector<std::string> corpus_names() const;

  // Blocking: returns when the answer is ready. Throws
  // std::invalid_argument for an unknown corpus or algorithm (listing the
  // known names); load shedding is reported via the outcome, not thrown.
  ServeResult query(const Query& q);

  ServiceStats stats() const;
  // The underlying summary cache — e.g. to pre-warm entries at startup
  // before opening the service to traffic.
  SummaryCache& cache() noexcept { return cache_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t queue_depth() const;

  // Collected per-query spans (record_query_spans); clears the buffer.
  std::vector<dist::QuerySpan> drain_query_spans();

 private:
  struct CorpusEntry {
    std::string objective;
    bool cacheable = true;  // objective's cache_safe flag
    std::shared_ptr<SubmodularOracle> proto;
    // Shared so flights snapshot it by handle: a mutation swaps in a fresh
    // vector (copy-on-mutate) and never touches one an in-flight run holds.
    std::shared_ptr<const std::vector<ElementId>> ground;
    // Cross-query lazy-bound warm start (core/bound_heap.h): singleton
    // gains f({x}) computed by one certified run seed the round-0 scans of
    // every later run over this corpus. Only created for cache_safe
    // objectives — the same determinism contract that makes summaries
    // cacheable makes their gains reusable as bounds. Reset on mutation
    // (the singletons change with the ground set).
    std::shared_ptr<detail::SingletonBoundCache> bounds;
    // Dynamic corpora only (add_dynamic_corpus).
    std::shared_ptr<data::DynamicCorpus> dynamic;
    data::DynamicOracleOptions oracle_options;
    std::uint64_t epoch = 0;
  };

  // Immutable view of a corpus at submit time. Mutations replace the
  // entry's handles under mu_ (copy-on-mutate), so a snapshot stays
  // self-consistent for the whole life of a flight without holding the
  // lock — the whole reason queries and mutations can overlap safely.
  struct CorpusSnapshot {
    std::string objective;
    bool cacheable = true;
    std::shared_ptr<SubmodularOracle> proto;
    std::shared_ptr<const std::vector<ElementId>> ground;
    std::shared_ptr<detail::SingletonBoundCache> bounds;
    std::uint64_t epoch = 0;
  };

  // One admitted computation; identical queries coalesce onto it.
  struct Flight {
    QueryKey key;
    std::size_t k = 0;
    std::size_t output_items = 0;
    std::string tenant;
    bool certified = false;  // cache_safe → publish into the cache
    RuntimeOptions runtime;
    CorpusSnapshot corpus;
    std::chrono::steady_clock::time_point enqueued;
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
    // Result: a summary for certified flights, a raw result otherwise.
    std::shared_ptr<const CachedSummary> summary;
    bool served_from_cache = false;  // double-check hit: no run happened
    ServeResult raw;        // non-certified answer, served verbatim
    std::uint64_t spent = 0;  // oracle evals charged by a raw run
    std::uint64_t avoided = 0;  // lazy-bound evals skipped by the run
    std::exception_ptr error;
    bool done = false;
  };
  using FlightPtr = std::shared_ptr<Flight>;

  CorpusSnapshot snapshot_corpus(const std::string& name) const;
  void register_corpus(std::string name, std::string objective,
                       std::shared_ptr<SubmodularOracle> proto,
                       std::vector<ElementId> ground,
                       std::shared_ptr<data::DynamicCorpus> dynamic,
                       data::DynamicOracleOptions oracle_options);
  MutationOutcome apply_mutation(const std::string& name, data::Mutation m);
  ServeResult serve_from_summary(const CachedSummary& summary,
                                 const Query& q, ServeOutcome outcome) const;
  // Picks the next flight round-robin across tenants and runs it. Invoked
  // on the pool, one task per admitted flight.
  void drain_one();
  void execute(const FlightPtr& flight);
  void record_span(const Query& q, const ServeResult& result);

  const ServiceOptions options_;
  SummaryCache cache_;

  // Serializes whole mutations (corpus apply + recertify pass) against each
  // other without blocking queries: queries only read snapshots taken under
  // mu_, never the DynamicCorpus itself. Acquired before mu_; never the
  // other way around.
  std::mutex mutate_mu_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, CorpusEntry> corpora_;
  // In-flight computations by (key, k, output_items); coalescing targets.
  std::vector<FlightPtr> in_flight_;
  // Admission queue: per-tenant FIFOs drained round-robin.
  std::unordered_map<std::string, std::deque<FlightPtr>> queued_;
  std::vector<std::string> tenant_order_;  // round-robin ring
  std::size_t rr_cursor_ = 0;
  std::size_t queued_total_ = 0;
  std::uint64_t next_query_id_ = 0;
  ServiceStats stats_;
  std::vector<dist::QuerySpan> spans_;

  // Last member: destroyed first, so in-flight drain tasks finish while
  // every structure they touch is still alive.
  dist::ThreadPool pool_;
};

}  // namespace bds::serve
