#include "serve/cache.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <utility>

namespace bds::serve {
namespace {

// FNV-1a style mixing; epsilon enters through its bit pattern so distinct
// configurations never collide through rounding in the hash (equality is
// exact anyway).
void mix(std::size_t& h, std::uint64_t v) noexcept {
  h ^= static_cast<std::size_t>(v);
  h *= 1099511628211ull;
}

}  // namespace

std::size_t QueryKeyHash::operator()(const QueryKey& key) const noexcept {
  std::size_t h = 1469598103934665603ull;
  const std::hash<std::string> sh;
  mix(h, sh(key.corpus));
  mix(h, key.epoch);
  mix(h, sh(key.objective));
  mix(h, sh(key.algorithm));
  mix(h, std::bit_cast<std::uint64_t>(key.epsilon));
  mix(h, key.rounds);
  mix(h, key.machines);
  mix(h, key.seed);
  mix(h, static_cast<std::uint64_t>(key.worker_oracle));
  mix(h, (key.incremental_gains ? 1u : 0u) |
             (key.parallel_central ? 2u : 0u));
  return h;
}

bool cache_safe(const RuntimeOptions& runtime) noexcept {
  return runtime.faults.all_healthy() && !runtime.resume_from &&
         runtime.halt_after_round == 0;
}

QueryKey make_key(std::string corpus, std::string objective,
                  std::string algorithm, double epsilon, std::size_t rounds,
                  std::size_t machines, const RuntimeOptions& runtime,
                  std::uint64_t epoch) {
  QueryKey key;
  key.corpus = std::move(corpus);
  key.epoch = epoch;
  key.objective = std::move(objective);
  key.algorithm = std::move(algorithm);
  key.epsilon = epsilon;
  key.rounds = rounds;
  key.machines = machines;
  key.seed = runtime.seed;
  key.worker_oracle = runtime.worker_oracle;
  key.incremental_gains = runtime.incremental_gains;
  key.parallel_central = runtime.parallel_central;
  return key;
}

std::size_t CachedSummary::items_for(std::size_t k,
                                     std::size_t output_items) const noexcept {
  const std::size_t want = output_items != 0 ? output_items : k;
  return std::min(want, solution.size());
}

double CachedSummary::upper_bound(std::size_t k) const noexcept {
  if (top_gain_prefix.empty()) return max_value;
  const std::size_t kk = std::min(k, top_gain_prefix.size() - 1);
  return std::min(max_value, value + top_gain_prefix[kk]);
}

std::shared_ptr<const CachedSummary> build_summary(
    QueryKey key, std::size_t budget_k, const RunResult& run,
    const SubmodularOracle& proto, std::span<const ElementId> ground) {
  auto entry = std::make_shared<CachedSummary>();
  entry->key = std::move(key);
  entry->budget_k = budget_k;
  entry->solution = run.solution;
  entry->value = run.value;
  entry->max_value = proto.max_value();
  entry->run_evals = run.stats.total_evals() + run.stats.total_merge_evals();

  // Ordered replay: the same add() sequence the run committed, on a clone
  // of the same prototype, so every prefix value is the bitwise value a
  // direct run would have reported after that many selections.
  auto replay = proto.clone();
  entry->prefix_value.reserve(run.solution.size() + 1);
  entry->prefix_value.push_back(replay->value());
  for (const ElementId x : run.solution) {
    replay->add(x);
    entry->prefix_value.push_back(replay->value());
  }

  // Certificate scan: marginal gains of every ground element on top of the
  // full solution; the sorted top-budget_k prefix sums bound f(OPT_k') for
  // every k' ≤ budget_k (monotone submodularity, see core/upper_bound.h).
  std::vector<double> gains(ground.size(), 0.0);
  if (!ground.empty()) {
    replay->gain_batch(ground, std::span<double>(gains));
  }
  const std::size_t top = std::min(budget_k, gains.size());
  std::partial_sort(gains.begin(),
                    gains.begin() + static_cast<std::ptrdiff_t>(top),
                    gains.end(), std::greater<double>());
  entry->top_gain_prefix.resize(top + 1, 0.0);
  for (std::size_t j = 0; j < top; ++j) {
    // Sampled oracles can estimate small negative gains; they cannot make
    // the bound tighter than f(S) itself.
    entry->top_gain_prefix[j + 1] =
        entry->top_gain_prefix[j] + std::max(0.0, gains[j]);
  }
  entry->build_evals = replay->evals();
  return entry;
}

SummaryCache::SummaryCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CachedSummary> SummaryCache::lookup(
    const QueryKey& key, std::size_t k, std::size_t min_items) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.entry->budget_k < k ||
      it->second.entry->solution.size() < min_items) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.last_used = ++tick_;
  return it->second.entry;
}

std::shared_ptr<const CachedSummary> SummaryCache::peek(
    const QueryKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.entry;
}

void SummaryCache::insert(std::shared_ptr<const CachedSummary> entry) {
  if (!entry) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(entry->key);
  if (it != entries_.end()) {
    // One entry per key: the larger summary answers everything the smaller
    // one could.
    const CachedSummary& old = *it->second.entry;
    if (entry->budget_k > old.budget_k ||
        (entry->budget_k == old.budget_k &&
         entry->solution.size() > old.solution.size())) {
      it->second.entry = std::move(entry);
      it->second.last_used = ++tick_;
      ++stats_.replacements;
    }
    return;
  }
  if (entries_.size() >= capacity_) evict_locked();
  // Copy the key out first: argument evaluation order is unspecified, and
  // the Slot temporary moves `entry` away.
  QueryKey map_key = entry->key;
  entries_.emplace(std::move(map_key), Slot{std::move(entry), ++tick_});
  ++stats_.insertions;
}

std::vector<std::shared_ptr<const CachedSummary>> SummaryCache::take_corpus(
    const std::string& corpus) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<const CachedSummary>> taken;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.corpus == corpus) {
      taken.push_back(std::move(it->second.entry));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return taken;
}

void SummaryCache::evict_locked() {
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.last_used < victim->second.last_used) victim = it;
  }
  if (victim != entries_.end()) {
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

std::size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

CacheStats SummaryCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace bds::serve
