#include "objectives/exemplar.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "dist/thread_pool.h"
#include "objectives/gain_fusion.h"
#include "util/kernels.h"

namespace bds {

PointSet::PointSet(std::size_t n, std::size_t dim, std::vector<float> data)
    : n_(n), dim_(dim), stride_(kern::padded_dim(dim)) {
  if (dim == 0) throw std::invalid_argument("PointSet: dim must be positive");
  if (data.size() != n * dim) {
    throw std::invalid_argument("PointSet: data size != n * dim");
  }
  data_.assign(n_ * stride_, 0.0f);
  for (std::size_t i = 0; i < n_; ++i) {
    std::copy(data.begin() + i * dim_, data.begin() + (i + 1) * dim_,
              data_.begin() + i * stride_);
  }
  recompute_norms();
}

PointSet::PointSet(std::size_t n, std::size_t dim, std::size_t stride,
                   const float* rows, const double* norms,
                   std::shared_ptr<const void> storage)
    : n_(n),
      dim_(dim),
      stride_(stride),
      storage_(std::move(storage)),
      ext_rows_(rows),
      ext_norms_(norms) {
  if (dim == 0) throw std::invalid_argument("PointSet: dim must be positive");
  if (storage_ == nullptr || (n > 0 && (rows == nullptr || norms == nullptr))) {
    throw std::invalid_argument("PointSet: null external storage");
  }
  if (stride != kern::padded_dim(dim)) {
    throw std::invalid_argument(
        "PointSet: external stride != kern::padded_dim(dim)");
  }
  if (reinterpret_cast<std::uintptr_t>(rows) % util::kSimdAlign != 0) {
    throw std::invalid_argument(
        "PointSet: external row matrix is not SIMD-aligned");
  }
}

void PointSet::recompute_norms() {
  norms_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    norms_[i] = kern::squared_norm(row(i), dim_);
  }
}

void PointSet::materialize_owned() {
  if (!storage_) return;
  data_.assign(ext_rows_, ext_rows_ + n_ * stride_);
  norms_.assign(ext_norms_, ext_norms_ + n_);
  storage_.reset();
  ext_rows_ = nullptr;
  ext_norms_ = nullptr;
}

void PointSet::normalize_rows() {
  materialize_owned();  // the mapping is read-only; scale an owned copy
  const bool legacy = kern::legacy();
  for (std::size_t i = 0; i < n_; ++i) {
    float* r = data_.data() + i * stride_;
    double norm2 = 0.0;
    if (legacy) {
      for (std::size_t d = 0; d < dim_; ++d) norm2 += double(r[d]) * r[d];
    } else {
      norm2 = kern::squared_norm(r, dim_);
    }
    if (norm2 <= 0.0) continue;
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (std::size_t d = 0; d < dim_; ++d) r[d] *= inv;
  }
  recompute_norms();
}

double squared_l2(std::span<const float> a,
                  std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  if (kern::legacy()) {
    double acc = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d) {
      const double diff = double(a[d]) - double(b[d]);
      acc += diff * diff;
    }
    return acc;
  }
  return kern::squared_l2(a.data(), b.data(), a.size());
}

namespace {

// The cost-term view both oracles evaluate against: `count` terms, term t
// referring to point id (ids ? ids[t] : t), with its current min distance
// in min_dist[t].
struct CostView {
  const PointSet* points;
  const std::uint32_t* ids;  // nullptr = identity (exact oracle)
  std::size_t count;
  const double* min_dist;
};

// --- canonical kernel-layer evaluation --------------------------------------
//
// Gains accumulate per canonical kern::kCostChunk chunk of cost terms
// (sequentially inside a chunk), and the chunk partials are summed in
// ascending chunk order. Serial evaluation, the pool-parallel batch path,
// add(), and single gain() all share this grouping, so every path yields
// bit-identical doubles at any thread count.

std::size_t chunk_count(std::size_t count) {
  return (count + kern::kCostChunk - 1) / kern::kCostChunk;
}

// out[j] = Σ_chunks gain_tile(chunk)[j], scaled. `pool` may be null.
void kernel_gain_batch(const CostView& view, double scale,
                       std::span<const ElementId> xs, std::span<double> out,
                       dist::ThreadPool* pool) {
  const std::size_t batch = xs.size();
  if (batch == 0) return;
  const PointSet& pts = *view.points;
  const std::size_t n_chunks = chunk_count(view.count);
  const kern::KernelTable& kt = kern::active_table();

  // partial[c * batch + j]: candidate j's gain over chunk c. Disjoint per
  // chunk, so chunks can run on pool threads; the merge below is ordered.
  std::vector<double> partial(n_chunks * batch);
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * kern::kCostChunk;
    const std::size_t end =
        std::min(begin + kern::kCostChunk, view.count);
    double* prow = partial.data() + c * batch;
    for (std::size_t j0 = 0; j0 < batch; j0 += kern::kGainTile) {
      const std::size_t n_x = std::min(kern::kGainTile, batch - j0);
      const float* tile_rows[kern::kGainTile];
      double tile_norms[kern::kGainTile];
      for (std::size_t j = 0; j < n_x; ++j) {
        tile_rows[j] = pts.row(xs[j0 + j]);
        tile_norms[j] = pts.norm2(xs[j0 + j]);
      }
      kt.gain_tile(pts.rows(), pts.stride(), pts.norms(), view.ids,
                   view.min_dist, begin, end, tile_rows, tile_norms, n_x,
                   prow + j0);
    }
  };

  if (pool != nullptr && pool->size() > 1 && n_chunks > 1) {
    pool->parallel_for(n_chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < n_chunks; ++c) run_chunk(c);
  }

  // Chunk-ordered merge — independent of which thread ran which chunk.
  for (std::size_t j = 0; j < batch; ++j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < n_chunks; ++c) acc += partial[c * batch + j];
    out[j] = acc * scale;
  }
}

double kernel_gain_one(const CostView& view, ElementId x) {
  const PointSet& pts = *view.points;
  const kern::KernelTable& kt = kern::active_table();
  const float* xr = pts.row(x);
  const double xn = pts.norm2(x);
  double total = 0.0;
  for (std::size_t begin = 0; begin < view.count;
       begin += kern::kCostChunk) {
    const std::size_t end =
        std::min(begin + kern::kCostChunk, view.count);
    double part = 0.0;
    kt.gain_tile(pts.rows(), pts.stride(), pts.norms(), view.ids,
                 view.min_dist, begin, end, &xr, &xn, 1, &part);
    total += part;
  }
  return total;
}

// Commits x: tightens min_dist in place, returns the realized (unscaled)
// gain with the same chunked accumulation gain uses, so gain(x) == the
// gain add(x) realizes, bit for bit.
double kernel_add(const CostView& view, std::vector<double>& min_dist,
                  ElementId x) {
  const PointSet& pts = *view.points;
  const kern::KernelTable& kt = kern::active_table();
  const float* xr = pts.row(x);
  const double xn = pts.norm2(x);
  double buf[kern::kCostChunk];
  double total = 0.0;
  for (std::size_t begin = 0; begin < view.count;
       begin += kern::kCostChunk) {
    const std::size_t end =
        std::min(begin + kern::kCostChunk, view.count);
    kt.distance_row(pts.rows(), pts.stride(), pts.norms(), view.ids, begin,
                    end, xr, xn, buf);
    double part = 0.0;
    for (std::size_t t = begin; t < end; ++t) {
      const double d = buf[t - begin];
      if (d < min_dist[t]) {
        part += min_dist[t] - d;
        min_dist[t] = d;
      }
    }
    total += part;
  }
  return total;
}

// The pool is only worth forking for when the scan is heavy enough; below
// this many candidate×cost-term pairs the fork/join overhead dominates.
constexpr std::size_t kMinParallelPairs = std::size_t{1} << 16;

bool kernel_gain_batch_parallel(const CostView& view, double scale,
                                std::span<const ElementId> xs,
                                std::span<double> out,
                                dist::ThreadPool& pool) {
  if (kern::legacy()) return false;
  if (chunk_count(view.count) < 2 ||
      xs.size() * view.count < kMinParallelPairs) {
    return false;
  }
  kernel_gain_batch(view, scale, xs, out, &pool);
  return true;
}

// --- legacy path (BDS_KERNEL=legacy): the pre-kernel sequential scans -------

double legacy_gain(const CostView& view, ElementId x) {
  const auto px = view.points->point(x);
  double gain = 0.0;
  for (std::size_t t = 0; t < view.count; ++t) {
    const std::size_t id = view.ids == nullptr ? t : view.ids[t];
    const double d = squared_l2(view.points->point(id), px);
    if (d < view.min_dist[t]) gain += view.min_dist[t] - d;
  }
  return gain;
}

double legacy_add(const CostView& view, std::vector<double>& min_dist,
                  ElementId x) {
  const auto px = view.points->point(x);
  double gain = 0.0;
  for (std::size_t t = 0; t < view.count; ++t) {
    const std::size_t id = view.ids == nullptr ? t : view.ids[t];
    const double d = squared_l2(view.points->point(id), px);
    if (d < min_dist[t]) {
      gain += min_dist[t] - d;
      min_dist[t] = d;
    }
  }
  return gain;
}

// Legacy tiled batch kernel: for a tile of candidates (small enough that
// their point rows stay cache-resident), stream every cost point once.
// Per candidate, the accumulation runs over cost terms in ascending order,
// matching the legacy scalar path's floating-point sum exactly.
constexpr std::size_t kLegacyTile = 16;

void legacy_gain_batch(const CostView& view, double scale,
                       std::span<const ElementId> xs, std::span<double> out) {
  for (std::size_t tile = 0; tile < xs.size(); tile += kLegacyTile) {
    const std::size_t tile_end = std::min(tile + kLegacyTile, xs.size());
    double acc[kLegacyTile] = {};
    for (std::size_t t = 0; t < view.count; ++t) {
      const std::size_t id = view.ids == nullptr ? t : view.ids[t];
      const auto pv = view.points->point(id);
      const double md = view.min_dist[t];
      for (std::size_t j = tile; j < tile_end; ++j) {
        const double d = squared_l2(pv, view.points->point(xs[j]));
        if (d < md) acc[j - tile] += md - d;
      }
    }
    for (std::size_t j = tile; j < tile_end; ++j) {
      out[j] = acc[j - tile] * scale;
    }
  }
}

}  // namespace

ExemplarOracle::ExemplarOracle(std::shared_ptr<const PointSet> points,
                               double p0_dist)
    : points_(std::move(points)), p0_dist_(p0_dist) {
  if (!points_ || points_->size() == 0) {
    throw std::invalid_argument("ExemplarOracle: empty point set");
  }
  if (p0_dist <= 0.0) {
    throw std::invalid_argument("ExemplarOracle: p0_dist must be positive");
  }
  min_dist_.assign(points_->size(), p0_dist_);
}

double ExemplarOracle::clustering_cost() const noexcept {
  double cost = 0.0;
  for (const double d : min_dist_) cost += d;
  return cost;
}

void ExemplarOracle::attach_fusion(std::shared_ptr<GainFusionGroup> group) {
  if (group && group->points().get() != points_.get()) {
    throw std::invalid_argument(
        "ExemplarOracle::attach_fusion: group built over a different "
        "PointSet");
  }
  fusion_ = std::move(group);
}

double ExemplarOracle::do_gain(ElementId x) const {
  if (fusion_ && !kern::legacy()) {
    double out = 0.0;
    fusion_->evaluate(std::span<const ElementId>(&x, 1), min_dist_.data(),
                      1.0, std::span<double>(&out, 1));
    return out;
  }
  const CostView view{points_.get(), nullptr, min_dist_.size(),
                      min_dist_.data()};
  return kern::legacy() ? legacy_gain(view, x) : kernel_gain_one(view, x);
}

void ExemplarOracle::do_gain_batch(std::span<const ElementId> xs,
                                   std::span<double> out) const {
  if (fusion_ && !kern::legacy()) {
    fusion_->evaluate(xs, min_dist_.data(), 1.0, out);
    return;
  }
  const CostView view{points_.get(), nullptr, min_dist_.size(),
                      min_dist_.data()};
  if (kern::legacy()) {
    legacy_gain_batch(view, 1.0, xs, out);
  } else {
    kernel_gain_batch(view, 1.0, xs, out, nullptr);
  }
}

bool ExemplarOracle::do_gain_batch_parallel(std::span<const ElementId> xs,
                                            std::span<double> out,
                                            dist::ThreadPool& pool) const {
  const CostView view{points_.get(), nullptr, min_dist_.size(),
                      min_dist_.data()};
  return kernel_gain_batch_parallel(view, 1.0, xs, out, pool);
}

double ExemplarOracle::do_add(ElementId x) {
  const CostView view{points_.get(), nullptr, min_dist_.size(),
                      min_dist_.data()};
  return kern::legacy() ? legacy_add(view, min_dist_, x)
                        : kernel_add(view, min_dist_, x);
}

std::unique_ptr<SubmodularOracle> ExemplarOracle::do_clone() const {
  return std::make_unique<ExemplarOracle>(*this);
}

SampledExemplarOracle::SampledExemplarOracle(
    std::shared_ptr<const PointSet> points, double p0_dist,
    std::size_t sample_size, util::Rng& rng)
    : points_(std::move(points)), p0_dist_(p0_dist) {
  if (!points_ || points_->size() == 0) {
    throw std::invalid_argument("SampledExemplarOracle: empty point set");
  }
  if (p0_dist <= 0.0) {
    throw std::invalid_argument(
        "SampledExemplarOracle: p0_dist must be positive");
  }
  if (sample_size == 0) {
    throw std::invalid_argument(
        "SampledExemplarOracle: sample_size must be positive");
  }
  sample_size = std::min(sample_size, points_->size());
  auto ids = rng.sample_without_replacement(points_->size(), sample_size);
  auto sample = std::make_shared<std::vector<std::uint32_t>>();
  sample->reserve(ids.size());
  for (const auto id : ids) sample->push_back(static_cast<std::uint32_t>(id));
  sample_ = std::move(sample);
  scale_ = static_cast<double>(points_->size()) /
           static_cast<double>(sample_->size());
  min_dist_.assign(sample_->size(), p0_dist_);
}

double SampledExemplarOracle::do_gain(ElementId x) const {
  const CostView view{points_.get(), sample_->data(), sample_->size(),
                      min_dist_.data()};
  const double gain =
      kern::legacy() ? legacy_gain(view, x) : kernel_gain_one(view, x);
  return gain * scale_;
}

void SampledExemplarOracle::do_gain_batch(std::span<const ElementId> xs,
                                          std::span<double> out) const {
  const CostView view{points_.get(), sample_->data(), sample_->size(),
                      min_dist_.data()};
  if (kern::legacy()) {
    legacy_gain_batch(view, scale_, xs, out);
  } else {
    kernel_gain_batch(view, scale_, xs, out, nullptr);
  }
}

bool SampledExemplarOracle::do_gain_batch_parallel(
    std::span<const ElementId> xs, std::span<double> out,
    dist::ThreadPool& pool) const {
  const CostView view{points_.get(), sample_->data(), sample_->size(),
                      min_dist_.data()};
  return kernel_gain_batch_parallel(view, scale_, xs, out, pool);
}

double SampledExemplarOracle::do_add(ElementId x) {
  const CostView view{points_.get(), sample_->data(), sample_->size(),
                      min_dist_.data()};
  const double gain = kern::legacy() ? legacy_add(view, min_dist_, x)
                                     : kernel_add(view, min_dist_, x);
  return gain * scale_;
}

std::unique_ptr<SubmodularOracle> SampledExemplarOracle::do_clone() const {
  return std::make_unique<SampledExemplarOracle>(*this);
}

}  // namespace bds
