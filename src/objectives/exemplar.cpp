#include "objectives/exemplar.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bds {

PointSet::PointSet(std::size_t n, std::size_t dim, std::vector<float> data)
    : n_(n), dim_(dim), data_(std::move(data)) {
  if (dim == 0) throw std::invalid_argument("PointSet: dim must be positive");
  if (data_.size() != n * dim) {
    throw std::invalid_argument("PointSet: data size != n * dim");
  }
}

void PointSet::normalize_rows() noexcept {
  for (std::size_t i = 0; i < n_; ++i) {
    float* row = data_.data() + i * dim_;
    double norm2 = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) norm2 += double(row[d]) * row[d];
    if (norm2 <= 0.0) continue;
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (std::size_t d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

double squared_l2(std::span<const float> a,
                  std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = double(a[d]) - double(b[d]);
    acc += diff * diff;
  }
  return acc;
}

ExemplarOracle::ExemplarOracle(std::shared_ptr<const PointSet> points,
                               double p0_dist)
    : points_(std::move(points)), p0_dist_(p0_dist) {
  if (!points_ || points_->size() == 0) {
    throw std::invalid_argument("ExemplarOracle: empty point set");
  }
  if (p0_dist <= 0.0) {
    throw std::invalid_argument("ExemplarOracle: p0_dist must be positive");
  }
  min_dist_.assign(points_->size(), p0_dist_);
}

double ExemplarOracle::clustering_cost() const noexcept {
  double cost = 0.0;
  for (const double d : min_dist_) cost += d;
  return cost;
}

double ExemplarOracle::do_gain(ElementId x) const {
  const auto px = points_->point(x);
  double gain = 0.0;
  for (std::size_t v = 0; v < min_dist_.size(); ++v) {
    const double d = squared_l2(points_->point(v), px);
    if (d < min_dist_[v]) gain += min_dist_[v] - d;
  }
  return gain;
}

namespace {

// Shared tiled kernel for both exemplar oracles: for a tile of candidates
// (small enough that their point rows stay cache-resident), stream every
// cost point v once, loading point(v) and its current min-distance a single
// time instead of once per candidate. `cost_ids` maps the cost-term index
// to a point id (identity for the exact oracle, the sample for the sampled
// one). Per candidate, the accumulation still runs over cost terms in
// ascending order, matching the scalar path's floating-point sum exactly.
constexpr std::size_t kExemplarTile = 16;

void exemplar_gain_batch(const PointSet& points,
                         const std::uint32_t* cost_ids, std::size_t n_costs,
                         const double* min_dist, double scale,
                         std::span<const ElementId> xs,
                         std::span<double> out) {
  for (std::size_t tile = 0; tile < xs.size(); tile += kExemplarTile) {
    const std::size_t tile_end = std::min(tile + kExemplarTile, xs.size());
    double acc[kExemplarTile] = {};
    for (std::size_t v = 0; v < n_costs; ++v) {
      const auto pv =
          points.point(cost_ids == nullptr ? v : cost_ids[v]);
      const double md = min_dist[v];
      for (std::size_t j = tile; j < tile_end; ++j) {
        const double d = squared_l2(pv, points.point(xs[j]));
        if (d < md) acc[j - tile] += md - d;
      }
    }
    for (std::size_t j = tile; j < tile_end; ++j) {
      out[j] = acc[j - tile] * scale;
    }
  }
}

}  // namespace

void ExemplarOracle::do_gain_batch(std::span<const ElementId> xs,
                                   std::span<double> out) const {
  exemplar_gain_batch(*points_, nullptr, min_dist_.size(), min_dist_.data(),
                      1.0, xs, out);
}

double ExemplarOracle::do_add(ElementId x) {
  const auto px = points_->point(x);
  double gain = 0.0;
  for (std::size_t v = 0; v < min_dist_.size(); ++v) {
    const double d = squared_l2(points_->point(v), px);
    if (d < min_dist_[v]) {
      gain += min_dist_[v] - d;
      min_dist_[v] = d;
    }
  }
  return gain;
}

std::unique_ptr<SubmodularOracle> ExemplarOracle::do_clone() const {
  return std::make_unique<ExemplarOracle>(*this);
}

SampledExemplarOracle::SampledExemplarOracle(
    std::shared_ptr<const PointSet> points, double p0_dist,
    std::size_t sample_size, util::Rng& rng)
    : points_(std::move(points)), p0_dist_(p0_dist) {
  if (!points_ || points_->size() == 0) {
    throw std::invalid_argument("SampledExemplarOracle: empty point set");
  }
  if (p0_dist <= 0.0) {
    throw std::invalid_argument(
        "SampledExemplarOracle: p0_dist must be positive");
  }
  if (sample_size == 0) {
    throw std::invalid_argument(
        "SampledExemplarOracle: sample_size must be positive");
  }
  sample_size = std::min(sample_size, points_->size());
  auto ids = rng.sample_without_replacement(points_->size(), sample_size);
  auto sample = std::make_shared<std::vector<std::uint32_t>>();
  sample->reserve(ids.size());
  for (const auto id : ids) sample->push_back(static_cast<std::uint32_t>(id));
  sample_ = std::move(sample);
  scale_ = static_cast<double>(points_->size()) /
           static_cast<double>(sample_->size());
  min_dist_.assign(sample_->size(), p0_dist_);
}

double SampledExemplarOracle::do_gain(ElementId x) const {
  const auto px = points_->point(x);
  const auto& sample = *sample_;
  double gain = 0.0;
  for (std::size_t s = 0; s < sample.size(); ++s) {
    const double d = squared_l2(points_->point(sample[s]), px);
    if (d < min_dist_[s]) gain += min_dist_[s] - d;
  }
  return gain * scale_;
}

void SampledExemplarOracle::do_gain_batch(std::span<const ElementId> xs,
                                          std::span<double> out) const {
  exemplar_gain_batch(*points_, sample_->data(), sample_->size(),
                      min_dist_.data(), scale_, xs, out);
}

double SampledExemplarOracle::do_add(ElementId x) {
  const auto px = points_->point(x);
  const auto& sample = *sample_;
  double gain = 0.0;
  for (std::size_t s = 0; s < sample.size(); ++s) {
    const double d = squared_l2(points_->point(sample[s]), px);
    if (d < min_dist_[s]) {
      gain += min_dist_[s] - d;
      min_dist_[s] = d;
    }
  }
  return gain * scale_;
}

std::unique_ptr<SubmodularOracle> SampledExemplarOracle::do_clone() const {
  return std::make_unique<SampledExemplarOracle>(*this);
}

}  // namespace bds
