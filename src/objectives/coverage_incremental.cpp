#include "objectives/coverage_incremental.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "objectives/shard_view.h"

namespace bds {

namespace {

// Shard view of the incremental oracle: a sliced CSR over the shard's rows
// (local element ids), its transpose, the parent's covered flags projected
// onto the touched slice, and the parent's residuals copied for the shard
// rows. Residuals stay exact within the view because its transpose lists
// exactly the shard rows containing each touched element. Built from the
// parent oracle (not its SetSystem) so shard members that live in the
// parent's dynamic overlay slice exactly like base sets.
class IncrementalCoverageShardView final : public SubmodularOracle {
 public:
  IncrementalCoverageShardView(const IncrementalCoverageOracle& parent,
                               std::span<const ElementId> shard)
      : index_(shard),
        ground_size_(parent.ground_size()),
        universe_size_(
            static_cast<std::uint32_t>(parent.covered_flags().size())) {
    const std::span<const std::uint8_t> covered = parent.covered_flags();
    const std::span<const std::uint32_t> residual = parent.residuals();
    std::size_t total = 0;
    for (const ElementId item : index_.items()) {
      total += parent.set_items(item).size();
    }
    offsets_.reserve(index_.size() + 1);
    offsets_.push_back(0);
    entries_.reserve(total);
    residual_.reserve(index_.size());
    detail::U32LocalIdMap remap(total);
    for (const ElementId item : index_.items()) {
      residual_.push_back(residual[item]);
      for (const std::uint32_t e : parent.set_items(item)) {
        const auto next = static_cast<std::uint32_t>(covered_.size());
        const std::uint32_t local = remap.find_or_insert(e, next);
        if (local == next) covered_.push_back(covered[e]);
        entries_.push_back(local);
      }
      offsets_.push_back(static_cast<std::uint32_t>(entries_.size()));
    }
    build_transpose();
  }

  std::size_t ground_size() const noexcept override { return ground_size_; }
  double max_value() const noexcept override {
    return static_cast<double>(universe_size_);
  }
  bool supports_compacted_shard_view() const noexcept override {
    return true;
  }

 protected:
  double do_gain(ElementId x) const override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    return static_cast<double>(residual_[row]);
  }

  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t row = index_.row_of(xs[i]);
      if (row == detail::ShardItemIndex::npos) {
        detail::throw_outside_shard(xs[i]);
      }
      out[i] = static_cast<double>(residual_[row]);
    }
  }

  double do_add(ElementId x) override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    const double gain = static_cast<double>(residual_[row]);
    for (std::size_t e = offsets_[row]; e < offsets_[row + 1]; ++e) {
      const std::uint32_t el = entries_[e];
      if (covered_[el]) continue;
      covered_[el] = 1;
      for (std::size_t s = inv_offsets_[el]; s < inv_offsets_[el + 1]; ++s) {
        --residual_[inv_entries_[s]];
      }
    }
    return gain;
  }

  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<IncrementalCoverageShardView>(*this);
  }

  std::size_t do_state_bytes() const noexcept override {
    return (offsets_.capacity() + inv_offsets_.capacity()) *
               sizeof(std::uint32_t) +
           (entries_.capacity() + inv_entries_.capacity() +
            residual_.capacity()) *
               sizeof(std::uint32_t) +
           covered_.capacity() * sizeof(std::uint8_t) + index_.bytes();
  }

 private:
  // Counting-sort transpose of the local CSR: touched element → shard rows.
  void build_transpose() {
    inv_offsets_.assign(covered_.size() + 1, 0);
    for (const std::uint32_t el : entries_) ++inv_offsets_[el + 1];
    for (std::size_t e = 1; e < inv_offsets_.size(); ++e) {
      inv_offsets_[e] += inv_offsets_[e - 1];
    }
    inv_entries_.resize(entries_.size());
    std::vector<std::uint32_t> cursor(inv_offsets_.begin(),
                                      inv_offsets_.end() - 1);
    for (std::size_t row = 0; row + 1 < offsets_.size(); ++row) {
      for (std::size_t e = offsets_[row]; e < offsets_[row + 1]; ++e) {
        inv_entries_[cursor[entries_[e]]++] =
            static_cast<std::uint32_t>(row);
      }
    }
  }

  detail::ShardItemIndex index_;
  std::vector<std::uint32_t> offsets_;      // local CSR: shard rows
  std::vector<std::uint32_t> entries_;      // local element ids
  std::vector<std::uint32_t> inv_offsets_;  // transpose: touched elements
  std::vector<std::uint32_t> inv_entries_;  // shard row ids
  std::vector<std::uint8_t> covered_;       // projected parent flags
  std::vector<std::uint32_t> residual_;     // per shard row
  std::size_t ground_size_;
  std::uint32_t universe_size_;
};

}  // namespace

InvertedIndex::InvertedIndex(const SetSystem& sets) {
  offsets_.assign(sets.universe_size() + 1, 0);
  const std::size_t num_sets = sets.num_sets();
  for (std::size_t s = 0; s < num_sets; ++s) {
    for (const std::uint32_t e : sets.set_items(s)) ++offsets_[e + 1];
  }
  for (std::size_t e = 1; e < offsets_.size(); ++e) {
    offsets_[e] += offsets_[e - 1];
  }
  entries_.resize(sets.total_size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t s = 0; s < num_sets; ++s) {
    for (const std::uint32_t e : sets.set_items(s)) {
      entries_[cursor[e]++] = static_cast<std::uint32_t>(s);
    }
  }
}

IncrementalCoverageOracle::IncrementalCoverageOracle(
    std::shared_ptr<const SetSystem> sets)
    : IncrementalCoverageOracle(
          sets, std::make_shared<const InvertedIndex>(*sets)) {}

IncrementalCoverageOracle::IncrementalCoverageOracle(
    std::shared_ptr<const SetSystem> sets,
    std::shared_ptr<const InvertedIndex> index)
    : sets_(std::move(sets)),
      index_(std::move(index)),
      covered_(sets_->universe_size(), 0) {
  residual_.reserve(sets_->num_sets());
  for (std::size_t s = 0; s < sets_->num_sets(); ++s) {
    residual_.push_back(static_cast<std::uint32_t>(sets_->set_size(s)));
  }
}

double IncrementalCoverageOracle::do_gain(ElementId x) const {
  return static_cast<double>(residual_[x]);
}

void IncrementalCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                              std::span<double> out) const {
  const std::uint32_t* const residual = residual_.data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = static_cast<double>(residual[xs[i]]);
  }
}

std::span<const std::uint32_t> IncrementalCoverageOracle::set_items(
    ElementId x) const {
  const std::size_t base = sets_->num_sets();
  if (x < base) return sets_->set_items(x);
  const std::size_t row = x - base;
  return std::span<const std::uint32_t>(
      ov_entries_.data() + ov_offsets_[row],
      static_cast<std::size_t>(ov_offsets_[row + 1] - ov_offsets_[row]));
}

double IncrementalCoverageOracle::do_add(ElementId x) {
  const double gain = static_cast<double>(residual_[x]);
  for (const std::uint32_t e : set_items(x)) {
    if (covered_[e]) continue;
    covered_[e] = 1;
    ++covered_count_;
    for (const std::uint32_t s : index_->sets_of(e)) --residual_[s];
    if (!ov_index_.empty()) {
      if (const auto hit = ov_index_.find(e); hit != ov_index_.end()) {
        for (const std::uint32_t s : hit->second) --residual_[s];
      }
    }
  }
  return gain;
}

void IncrementalCoverageOracle::do_apply_insert(
    ElementId id, std::span<const std::uint32_t> items) {
  if (id != residual_.size()) {
    throw std::invalid_argument(
        "apply_insert: id " + std::to_string(id) +
        " is not the next ground id (" + std::to_string(residual_.size()) +
        ") — mutations must be applied in log order");
  }
  // Items arrive canonical (sorted unique, in range) from the DynamicCorpus;
  // validate the range anyway so a bad caller cannot corrupt the bitmap.
  std::uint32_t residual = 0;
  for (const std::uint32_t e : items) {
    if (e >= covered_.size()) {
      throw std::out_of_range("apply_insert: element " + std::to_string(e) +
                              " outside universe");
    }
    if (!covered_[e]) ++residual;
  }
  const std::size_t ov_row = ov_offsets_.size() - 1;
  ov_entries_.insert(ov_entries_.end(), items.begin(), items.end());
  ov_offsets_.push_back(ov_entries_.size());
  residual_.push_back(residual);
  for (const std::uint32_t e : items) {
    ov_index_[e].push_back(static_cast<std::uint32_t>(
        sets_->num_sets() + ov_row));
  }
}

void IncrementalCoverageOracle::do_apply_erase(ElementId id) {
  if (id >= residual_.size()) {
    throw std::out_of_range("apply_erase: unknown ground id " +
                            std::to_string(id));
  }
  // An erase is a ground-set exclusion: the corpus tombstones the id and
  // ground enumeration skips it, so no residual or coverage state changes.
}

std::unique_ptr<SubmodularOracle> IncrementalCoverageOracle::do_clone()
    const {
  return std::make_unique<IncrementalCoverageOracle>(*this);
}

std::unique_ptr<SubmodularOracle> IncrementalCoverageOracle::do_shard_view(
    std::span<const ElementId> shard) const {
  return std::make_unique<IncrementalCoverageShardView>(*this, shard);
}

std::size_t IncrementalCoverageOracle::do_state_bytes() const noexcept {
  std::size_t ov_index_bytes = 0;
  for (const auto& [element, sets] : ov_index_) {
    (void)element;
    ov_index_bytes += sizeof(std::uint32_t) +
                      sets.capacity() * sizeof(std::uint32_t);
  }
  return covered_.capacity() * sizeof(std::uint8_t) +
         residual_.capacity() * sizeof(std::uint32_t) +
         ov_offsets_.capacity() * sizeof(std::uint64_t) +
         ov_entries_.capacity() * sizeof(std::uint32_t) + ov_index_bytes;
}

std::unique_ptr<SubmodularOracle> make_incremental_coverage(
    const SubmodularOracle& proto) {
  const auto* coverage = dynamic_cast<const CoverageOracle*>(&proto);
  if (coverage == nullptr) return nullptr;
  auto oracle =
      std::make_unique<IncrementalCoverageOracle>(coverage->set_system_ptr());
  for (const ElementId x : proto.current_set()) oracle->add(x);
  oracle->reset_evals();
  return oracle;
}

}  // namespace bds
