// Achlioptas-style Johnson–Lindenstrauss random projection (±1 entries,
// scaled by 1/√target_dim). §4.2 projects TinyImages' 3072-dim vectors to
// 300 dims before optimization; reported objective values are computed on
// the originals.
#pragma once

#include <cstddef>
#include <cstdint>

#include "objectives/exemplar.h"
#include "util/rng.h"

namespace bds {

// Projects every point of `input` into `target_dim` dimensions using a dense
// random sign matrix R with entries ±1/√target_dim: y = R x. Squared
// distances are preserved within (1±ε) with high probability for
// target_dim = Ω(log n / ε²).
// Preconditions: target_dim > 0.
PointSet jl_project(const PointSet& input, std::size_t target_dim,
                    std::uint64_t seed);

}  // namespace bds
