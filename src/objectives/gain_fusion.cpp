#include "objectives/gain_fusion.h"

#include <algorithm>
#include <stdexcept>

#include "objectives/exemplar.h"
#include "util/kernels.h"

namespace bds {

GainFusionGroup::GainFusionGroup(std::shared_ptr<const PointSet> points)
    : points_(std::move(points)) {
  if (!points_ || points_->size() == 0) {
    throw std::invalid_argument("GainFusionGroup: empty point set");
  }
}

void GainFusionGroup::evaluate(std::span<const ElementId> xs,
                               const double* min_dist, double scale,
                               std::span<double> out) {
  if (xs.empty()) return;
  Request req{xs, min_dist, scale, out};

  std::unique_lock<std::mutex> lk(mu_);
  pending_.push_back(&req);
  ++stats_.requests;
  if (combiner_active_) {
    // A combiner is draining; it will pick this request up in its next
    // round (fusing it with whatever else arrived meanwhile).
    cv_.wait(lk, [&] { return req.done; });
    return;
  }

  combiner_active_ = true;
  std::vector<Request*> round;
  while (!pending_.empty()) {
    round.clear();
    round.swap(pending_);
    ++stats_.rounds;
    std::uint64_t n_cands = 0;
    for (const Request* r : round) n_cands += r->xs.size();
    stats_.candidates += n_cands;
    if (round.size() > 1) {
      ++stats_.fused_rounds;
      stats_.fused_candidates += n_cands;
    }
    stats_.mq_tiles +=
        ((n_cands + kern::kGainTile - 1) / kern::kGainTile) *
        ((points_->size() + kern::kCostChunk - 1) / kern::kCostChunk);

    lk.unlock();
    run_round(round);
    lk.lock();
    for (Request* r : round) r->done = true;
    cv_.notify_all();
  }
  combiner_active_ = false;
}

void GainFusionGroup::run_round(const std::vector<Request*>& round) {
  const PointSet& pts = *points_;
  const std::size_t count = pts.size();
  const kern::KernelTable& kt = kern::active_table();

  // Flatten every (request, candidate) pair into one slot list; slots from
  // different requests share tiles.
  struct Slot {
    const float* row;
    double norm;
    const double* min_dist;
  };
  std::vector<Slot> slots;
  std::size_t total = 0;
  for (const Request* r : round) total += r->xs.size();
  slots.reserve(total);
  for (const Request* r : round) {
    for (const ElementId x : r->xs) {
      slots.push_back({pts.row(x), pts.norm2(x), r->min_dist});
    }
  }

  // Per-slot accumulation over canonical cost chunks in ascending order —
  // the same grouping the solo kernel paths use, so each slot's result is
  // bit-identical to an unfused evaluation.
  std::vector<double> acc(slots.size(), 0.0);
  for (std::size_t begin = 0; begin < count; begin += kern::kCostChunk) {
    const std::size_t end = std::min(begin + kern::kCostChunk, count);
    for (std::size_t s0 = 0; s0 < slots.size(); s0 += kern::kGainTile) {
      const std::size_t n_x = std::min(kern::kGainTile, slots.size() - s0);
      const float* tile_rows[kern::kGainTile];
      double tile_norms[kern::kGainTile];
      const double* tile_mds[kern::kGainTile];
      for (std::size_t j = 0; j < n_x; ++j) {
        tile_rows[j] = slots[s0 + j].row;
        tile_norms[j] = slots[s0 + j].norm;
        tile_mds[j] = slots[s0 + j].min_dist;
      }
      double part[kern::kGainTile];
      kt.gain_tile_mq(pts.rows(), pts.stride(), pts.norms(), nullptr,
                      tile_mds, begin, end, tile_rows, tile_norms, n_x, part);
      for (std::size_t j = 0; j < n_x; ++j) acc[s0 + j] += part[j];
    }
  }

  std::size_t s = 0;
  for (const Request* r : round) {
    for (std::size_t j = 0; j < r->xs.size(); ++j, ++s) {
      r->out[j] = acc[s] * r->scale;
    }
  }
}

FusionStats GainFusionGroup::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace bds
