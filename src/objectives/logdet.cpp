#include "objectives/logdet.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bds {

LogDetOracle::LogDetOracle(std::shared_ptr<const PointSet> points,
                           double bandwidth, double noise_variance)
    : points_(std::move(points)) {
  if (!points_ || points_->size() == 0) {
    throw std::invalid_argument("LogDetOracle: empty point set");
  }
  if (bandwidth <= 0.0) {
    throw std::invalid_argument("LogDetOracle: bandwidth must be positive");
  }
  if (noise_variance <= 0.0) {
    throw std::invalid_argument("LogDetOracle: noise variance must be positive");
  }
  inv_two_bw2_ = 1.0 / (2.0 * bandwidth * bandwidth);
  inv_noise_ = 1.0 / noise_variance;
}

double LogDetOracle::kernel(ElementId a, ElementId b) const noexcept {
  const double d2 = squared_l2(points_->point(a), points_->point(b));
  return std::exp(-d2 * inv_two_bw2_);
}

std::vector<double> LogDetOracle::scaled_column(ElementId x) const {
  std::vector<double> col(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    col[i] = inv_noise_ * kernel(x, selected_[i]);
  }
  return col;
}

double LogDetOracle::do_gain(ElementId x) const {
  // Already selected => adding again is free (det unchanged by a duplicate
  // in the *set* sense).
  if (std::find(selected_.begin(), selected_.end(), x) != selected_.end()) {
    return 0.0;
  }
  // Conditional variance of x given S under the regularized kernel:
  // diag = 1 + σ⁻²k(x,x); numerically >= 1, so the Schur complement of a
  // PSD kernel stays >= ... > 0 and the log is well defined.
  const auto col = scaled_column(x);
  const double diag = 1.0 + inv_noise_ * kernel(x, x);
  const double schur = chol_.conditional_variance(col, diag);
  return 0.5 * std::log(std::max(schur, 1e-300));
}

double LogDetOracle::do_add(ElementId x) {
  if (std::find(selected_.begin(), selected_.end(), x) != selected_.end()) {
    return 0.0;
  }
  const auto col = scaled_column(x);
  const double diag = 1.0 + inv_noise_ * kernel(x, x);
  const double before = chol_.log_det();
  chol_.extend(col, diag);
  selected_.push_back(x);
  return 0.5 * (chol_.log_det() - before);
}

std::unique_ptr<SubmodularOracle> LogDetOracle::do_clone() const {
  return std::make_unique<LogDetOracle>(*this);
}

}  // namespace bds
