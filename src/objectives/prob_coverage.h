// Probabilistic (soft) coverage: each item i covers universe element u only
// with probability p_{i,u}; the objective is the expected covered weight
//
//   f(S) = Σ_u w_u · (1 − Π_{i∈S} (1 − p_{i,u})),
//
// a classic monotone submodular function (independent-cascade-style
// influence on a bipartite graph, soft sensor coverage, weighted keyword
// coverage with click-through rates). Strictly generalizes CoverageOracle
// (p ∈ {0,1}) and gives the library an objective whose marginal gains never
// hit zero exactly — useful for exercising the algorithms away from the
// saturation regime of hard coverage.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// CSR-packed bipartite item -> (element, probability) lists.
//
// Like SetSystem, either owns its CSR arrays (the validating constructor)
// or borrows them from externally owned storage — the sections of an
// mmap'd dataset file (data/io.h `map_prob_set_system`) — held alive by
// the `storage` handle. Entry's {u32, f32} layout is the on-disk layout.
class ProbSetSystem {
 public:
  struct Entry {
    std::uint32_t element;
    float probability;  // in [0, 1]
  };
  static_assert(sizeof(Entry) == 8 && alignof(Entry) == 4,
                "Entry is the on-disk section-B record");
  static_assert(std::is_trivially_copyable_v<Entry>,
                "Entry must be mappable from raw bytes");

  // Throws std::out_of_range for elements >= universe_size and
  // std::invalid_argument for probabilities outside [0, 1].
  ProbSetSystem(std::vector<std::vector<Entry>> sets,
                std::uint32_t universe_size);

  // Zero-copy view over an already-validated CSR (what save_prob_set_system
  // writes: offsets ascending from 0 to num_entries, probabilities in
  // [0, 1], no duplicate element within a set). `offsets` has num_sets + 1
  // entries; `storage` owns the backing bytes and is retained for the
  // ProbSetSystem's lifetime. Throws std::invalid_argument on a null array
  // or an offsets/num_entries mismatch.
  ProbSetSystem(const std::uint64_t* offsets, std::size_t num_sets,
                const Entry* entries, std::size_t num_entries,
                std::uint32_t universe_size,
                std::shared_ptr<const void> storage);

  std::size_t num_sets() const noexcept { return num_sets_; }
  std::uint32_t universe_size() const noexcept { return universe_size_; }
  std::size_t total_entries() const noexcept { return num_entries_; }
  // True when the CSR aliases external storage (an mmap'd file section).
  bool borrows_storage() const noexcept { return storage_ != nullptr; }

  std::span<const Entry> set_entries(ElementId set_id) const noexcept {
    const std::uint64_t* const offsets = offsets_data();
    return std::span<const Entry>(
        entries_data() + offsets[set_id],
        static_cast<std::size_t>(offsets[set_id + 1] - offsets[set_id]));
  }

  // Raw CSR arrays for batched kernels (offsets has num_sets()+1 entries).
  const std::uint64_t* offsets_data() const noexcept {
    return storage_ ? ext_offsets_ : owned_offsets_.data();
  }
  const Entry* entries_data() const noexcept {
    return storage_ ? ext_entries_ : owned_entries_.data();
  }

 private:
  std::vector<std::uint64_t> owned_offsets_;
  std::vector<Entry> owned_entries_;
  std::shared_ptr<const void> storage_;  // borrow mode: keep-alive
  const std::uint64_t* ext_offsets_ = nullptr;
  const Entry* ext_entries_ = nullptr;
  std::size_t num_sets_ = 0;
  std::size_t num_entries_ = 0;
  std::uint32_t universe_size_;
};

class ProbCoverageOracle final : public SubmodularOracle {
 public:
  // Unit weights.
  explicit ProbCoverageOracle(std::shared_ptr<const ProbSetSystem> sets);
  // Per-element non-negative weights; weights.size() must equal the
  // universe size (throws std::invalid_argument otherwise).
  ProbCoverageOracle(std::shared_ptr<const ProbSetSystem> sets,
                     std::vector<double> weights);

  std::size_t ground_size() const noexcept override {
    return sets_->num_sets();
  }
  double max_value() const noexcept override { return total_weight_; }
  bool supports_compacted_shard_view() const noexcept override { return true; }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const override;
  std::size_t do_state_bytes() const noexcept override;

 private:
  std::shared_ptr<const ProbSetSystem> sets_;
  std::shared_ptr<const std::vector<double>> weights_;  // may be null (unit)
  // Π_{i∈S} (1 − p_{i,u}) per universe element: 1.0 initially.
  std::vector<double> uncovered_prob_;
  // Set-function semantics: members contribute exactly once; re-adding an
  // already-selected item gains nothing.
  std::vector<std::uint8_t> in_set_;
  double total_weight_ = 0.0;

  double weight_of(std::uint32_t element) const noexcept {
    return weights_ ? (*weights_)[element] : 1.0;
  }
};

}  // namespace bds
