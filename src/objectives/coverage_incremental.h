// Inverted-index incremental gains for unweighted coverage (the
// coordinator-filter hot path).
//
// A plain CoverageOracle answers gain(x) by scanning set x and counting
// uncovered elements — O(|set x|) per query. A greedy filter over a pool P
// therefore pays O(k · Σ_{x∈P} |set x|): every one of the k adds rescans the
// whole pool. IncrementalCoverageOracle stores each set's current marginal
// gain (its *residual* — the number of its elements still uncovered) and an
// element → sets inverted index (the CSR transpose). Then
//
//   gain(x)  = residual[x]                                  — O(1),
//   add(x)   = for each newly covered element e of set x,
//              decrement residual[s] for every set s ∋ e    — O(Σ updates),
//
// and total filter work drops to O(Σ|set| + #residual updates): each
// (element, set) incidence is charged at most once over the whole run, when
// that element flips to covered.
//
// Exactness: residuals are integer counts, so decrements are exact and
// gain() is bit-identical to CoverageOracle::gain() at every step. This is
// also why the engine covers ONLY unweighted coverage — a floating-point
// weighted residual would drift away from the freshly-summed gain under
// repeated decrements, breaking the bit-identical contract, so the weighted
// and probabilistic oracles keep their scan-based gains (see
// docs/ALGORITHMS.md §"Worker memory model").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "objectives/coverage.h"
#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// Immutable element → sets transpose of a SetSystem, CSR-packed. Shared
// read-only across clones of the incremental oracle.
class InvertedIndex {
 public:
  explicit InvertedIndex(const SetSystem& sets);

  std::span<const std::uint32_t> sets_of(std::uint32_t element)
      const noexcept {
    return std::span<const std::uint32_t>(
        entries_.data() + offsets_[element],
        offsets_[element + 1] - offsets_[element]);
  }

  std::size_t bytes() const noexcept {
    return offsets_.capacity() * sizeof(std::size_t) +
           entries_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::size_t> offsets_;    // universe_size + 1
  std::vector<std::uint32_t> entries_;  // set ids, grouped by element
};

// Drop-in replacement for an unweighted CoverageOracle with O(1) gains.
// Same values, same evaluation accounting; only the cost model changes.
//
// This is also the repo's one oracle with an *incremental dynamic path*
// (supports_dynamic_updates): a corpus insert appends one residual counter,
// one overlay-CSR row, and one inverted-index posting per item — O(degree)
// — while the base SetSystem (possibly an mmap'd borrow) stays untouched.
// Because residuals are integers, a replayed mutation log yields state
// bit-identical to an oracle built from a materialized snapshot, which is
// what the dynamic-vs-rebuild identity tests pin. An erase is a ground-set
// exclusion (the id is tombstoned by the DynamicCorpus and never queried
// again); it costs nothing here and leaves other residuals untouched.
class IncrementalCoverageOracle final : public SubmodularOracle {
 public:
  // Builds the inverted index from `sets`.
  explicit IncrementalCoverageOracle(std::shared_ptr<const SetSystem> sets);
  // Shares a prebuilt index (must be the transpose of `sets`).
  IncrementalCoverageOracle(std::shared_ptr<const SetSystem> sets,
                            std::shared_ptr<const InvertedIndex> index);

  std::size_t ground_size() const noexcept override {
    return residual_.size();
  }
  double max_value() const noexcept override {
    return static_cast<double>(sets_->universe_size());
  }
  std::uint64_t covered_count() const noexcept { return covered_count_; }
  bool supports_compacted_shard_view() const noexcept override {
    return true;
  }
  bool supports_dynamic_updates() const noexcept override { return true; }

  // Members of set `x`, whether it lives in the base CSR or the overlay.
  std::span<const std::uint32_t> set_items(ElementId x) const;
  std::span<const std::uint8_t> covered_flags() const noexcept {
    return covered_;
  }
  std::span<const std::uint32_t> residuals() const noexcept {
    return residual_;
  }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const override;
  std::size_t do_state_bytes() const noexcept override;
  void do_apply_insert(ElementId id,
                       std::span<const std::uint32_t> items) override;
  void do_apply_erase(ElementId id) override;

 private:
  std::shared_ptr<const SetSystem> sets_;
  std::shared_ptr<const InvertedIndex> index_;
  std::vector<std::uint8_t> covered_;
  std::vector<std::uint32_t> residual_;  // current marginal gain per set
  std::uint64_t covered_count_ = 0;
  // Dynamic overlay: sets appended after construction, ids starting at
  // sets_->num_sets(). ov_index_ is the overlay's element → sets posting
  // list (the inverted index's growable sibling); empty until the first
  // insert, so the frozen fast path never consults it.
  std::vector<std::uint64_t> ov_offsets_{0};
  std::vector<std::uint32_t> ov_entries_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> ov_index_;
};

// Upgrades `proto` to an incremental-gain oracle when it is an unweighted
// CoverageOracle: shares its SetSystem, replays its committed set, and
// resets the evaluation counter so accounting matches a clone of the same
// state. Returns nullptr when `proto` is any other objective (callers fall
// back to proto.clone()).
std::unique_ptr<SubmodularOracle> make_incremental_coverage(
    const SubmodularOracle& proto);

}  // namespace bds
