// Informative-subset selection (active set selection for non-parametric
// learning — the paper's intro application [15], Guillory & Bilmes):
//
//   f(S) = ½ · log det(I + σ⁻² K_S),
//
// where K_S is the kernel (Gram) matrix of the selected points. Monotone
// submodular for any PSD kernel; the classic objective for choosing an
// informative active set for Gaussian-process regression (it is exactly the
// information gain of observing S under noise variance σ²).
//
// The oracle keeps an incremental Cholesky factor of (I + σ⁻²K_S):
//   gain(x)  = ½ log(1 + σ⁻² · Var[x | S])   — O(|S|²) per evaluation,
//   add(x)   = extend the factor             — O(|S|²).
// Kernel: RBF k(a,b) = exp(−‖a−b‖² / (2·bandwidth²)) over a PointSet.
#pragma once

#include <memory>
#include <vector>

#include "objectives/exemplar.h"
#include "objectives/submodular.h"
#include "util/element.h"
#include "util/linalg.h"

namespace bds {

class LogDetOracle final : public SubmodularOracle {
 public:
  // Preconditions: points non-null and non-empty, bandwidth > 0,
  // noise_variance > 0 (throws std::invalid_argument otherwise).
  LogDetOracle(std::shared_ptr<const PointSet> points, double bandwidth,
               double noise_variance);

  std::size_t ground_size() const noexcept override {
    return points_->size();
  }

  // RBF kernel value between points a and b.
  double kernel(ElementId a, ElementId b) const noexcept;

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::size_t do_state_bytes() const noexcept override {
    return selected_.capacity() * sizeof(ElementId) + chol_.bytes();
  }

 private:
  // Column of σ⁻²·k(x, s) over the currently selected s (factor order).
  std::vector<double> scaled_column(ElementId x) const;

  std::shared_ptr<const PointSet> points_;
  double inv_two_bw2_;      // 1 / (2·bandwidth²)
  double inv_noise_;        // σ⁻²
  std::vector<ElementId> selected_;  // factor order
  util::IncrementalCholesky chol_;   // factor of I + σ⁻² K_S
};

}  // namespace bds
