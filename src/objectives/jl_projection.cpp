#include "objectives/jl_projection.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace bds {

PointSet jl_project(const PointSet& input, std::size_t target_dim,
                    std::uint64_t seed) {
  if (target_dim == 0) {
    throw std::invalid_argument("jl_project: target_dim must be positive");
  }
  const std::size_t n = input.size();
  const std::size_t d = input.dim();
  const auto scale = static_cast<float>(1.0 / std::sqrt(double(target_dim)));

  // Materialize the sign matrix row-by-row as packed bits to keep memory at
  // d * target_dim / 8 bytes (3072x300 ~ 115 KiB).
  util::Rng rng(seed);
  const std::size_t words_per_row = (d + 63) / 64;
  std::vector<std::uint64_t> signs(target_dim * words_per_row);
  for (auto& w : signs) w = rng.next_u64();

  std::vector<float> out(n * target_dim, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = input.point(i);
    float* y = out.data() + i * target_dim;
    for (std::size_t t = 0; t < target_dim; ++t) {
      const std::uint64_t* row = signs.data() + t * words_per_row;
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const bool neg = (row[j >> 6] >> (j & 63)) & 1u;
        acc += neg ? -double(x[j]) : double(x[j]);
      }
      y[t] = static_cast<float>(acc) * scale;
    }
  }
  return PointSet(n, target_dim, std::move(out));
}

}  // namespace bds
