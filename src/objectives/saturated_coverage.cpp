#include "objectives/saturated_coverage.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bds {

SimilarityMatrix::SimilarityMatrix(std::size_t n, std::vector<double> values)
    : n_(n), values_(std::move(values)) {
  if (values_.size() != n * n) {
    throw std::invalid_argument("SimilarityMatrix: values size != n*n");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (values_[i * n + j] != values_[j * n + i]) {
        throw std::invalid_argument("SimilarityMatrix: not symmetric");
      }
    }
  }
  for (const double v : values_) {
    if (v < 0.0) {
      throw std::invalid_argument("SimilarityMatrix: negative similarity");
    }
  }
  row_sums_.resize(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_sums_[i] += values_[i * n + j];
  }
}

SaturatedCoverageOracle::SaturatedCoverageOracle(
    std::shared_ptr<const SimilarityMatrix> sim,
    SaturatedCoverageConfig config)
    : sim_(std::move(sim)), in_set_(sim_->size(), 0) {
  if (!(config.gamma > 0.0 && config.gamma <= 1.0)) {
    throw std::invalid_argument(
        "SaturatedCoverageOracle: gamma must be in (0, 1]");
  }
  if (config.lambda < 0.0) {
    throw std::invalid_argument(
        "SaturatedCoverageOracle: lambda must be non-negative");
  }
  if (!config.cluster_of.empty() &&
      config.cluster_of.size() != sim_->size()) {
    throw std::invalid_argument(
        "SaturatedCoverageOracle: one cluster label per element required");
  }

  const std::size_t n = sim_->size();
  covered_.assign(n, 0.0);
  caps_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    caps_[i] = config.gamma * sim_->row_sum(i);
  }

  // Relevance r_j = mean similarity to the corpus.
  auto relevance = std::make_shared<std::vector<double>>(n);
  for (std::size_t j = 0; j < n; ++j) {
    (*relevance)[j] = sim_->row_sum(j) / static_cast<double>(n);
  }
  relevance_ = std::move(relevance);

  if (!config.cluster_of.empty()) {
    std::uint32_t max_cluster = 0;
    for (const std::uint32_t c : config.cluster_of) {
      max_cluster = std::max(max_cluster, c);
    }
    cluster_mass_.assign(max_cluster + 1, 0.0);
  }
  config_ = std::make_shared<const SaturatedCoverageConfig>(std::move(config));
}

double SaturatedCoverageOracle::max_value() const noexcept {
  // Coverage term is capped by Σ_i γ·C_i(V); diversity by
  // λ·Σ_k sqrt(total cluster relevance).
  double cap_total = 0.0;
  for (const double c : caps_) cap_total += c;
  double diversity_cap = 0.0;
  if (!cluster_mass_.empty()) {
    std::vector<double> totals(cluster_mass_.size(), 0.0);
    for (std::size_t j = 0; j < sim_->size(); ++j) {
      totals[config_->cluster_of[j]] += (*relevance_)[j];
    }
    for (const double t : totals) diversity_cap += std::sqrt(t);
  }
  return cap_total + config_->lambda * diversity_cap;
}

double SaturatedCoverageOracle::diversity_delta(ElementId x) const noexcept {
  if (cluster_mass_.empty() || config_->lambda <= 0.0) return 0.0;
  const std::uint32_t c = config_->cluster_of[x];
  const double mass = cluster_mass_[c];
  return config_->lambda *
         (std::sqrt(mass + (*relevance_)[x]) - std::sqrt(mass));
}

double SaturatedCoverageOracle::do_gain(ElementId x) const {
  if (in_set_[x]) return 0.0;
  const std::size_t n = sim_->size();
  double gain = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double before = std::min(covered_[i], caps_[i]);
    const double after = std::min(covered_[i] + sim_->at(i, x), caps_[i]);
    gain += after - before;
  }
  return gain + diversity_delta(x);
}

void SaturatedCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                            std::span<double> out) const {
  // Transposed kernel: the scalar path reads one similarity *column* per
  // candidate (stride-n accesses). Here the outer loop walks rows, so each
  // row of the matrix is streamed once — contiguous loads — and covered_/
  // caps_ are read once per row instead of once per (row, candidate).
  // Accumulation per candidate still runs over rows in ascending order,
  // matching do_gain's floating-point sum exactly.
  const std::size_t n = sim_->size();
  for (std::size_t j = 0; j < xs.size(); ++j) out[j] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cov = covered_[i];
    const double cap = caps_[i];
    const double before = std::min(cov, cap);
    const double* const row = sim_->row(i);
    for (std::size_t j = 0; j < xs.size(); ++j) {
      const double after = std::min(cov + row[xs[j]], cap);
      out[j] += after - before;
    }
  }
  for (std::size_t j = 0; j < xs.size(); ++j) {
    out[j] = in_set_[xs[j]] ? 0.0 : out[j] + diversity_delta(xs[j]);
  }
}

double SaturatedCoverageOracle::do_add(ElementId x) {
  if (in_set_[x]) return 0.0;
  in_set_[x] = 1;
  const std::size_t n = sim_->size();
  double gain = diversity_delta(x);
  if (!cluster_mass_.empty()) {
    cluster_mass_[config_->cluster_of[x]] += (*relevance_)[x];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double before = std::min(covered_[i], caps_[i]);
    covered_[i] += sim_->at(i, x);
    gain += std::min(covered_[i], caps_[i]) - before;
  }
  return gain;
}

std::unique_ptr<SubmodularOracle> SaturatedCoverageOracle::do_clone() const {
  return std::make_unique<SaturatedCoverageOracle>(*this);
}

}  // namespace bds
