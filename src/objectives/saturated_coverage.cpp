#include "objectives/saturated_coverage.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "objectives/shard_view.h"

namespace bds {

namespace {

// Restricted-row view of a SaturatedCoverageOracle. The similarity matrix
// stays shared (immutable), but the per-worker mutable state — covered
// amounts and caps — is kept only for rows i with sim(i, x) > 0 for some
// shard member x. A dropped row contributes exactly
// min(cov, cap) − min(cov, cap) = +0.0 to every shard candidate's gain, and
// adding +0.0 to a non-negative partial sum is a bit-exact no-op, so gains
// and adds over the surviving rows (in ascending row order, matching the
// parent's loop) reproduce the parent's doubles bit for bit.
class SaturatedShardView final : public SubmodularOracle {
 public:
  SaturatedShardView(std::shared_ptr<const SimilarityMatrix> sim,
                     std::shared_ptr<const SaturatedCoverageConfig> config,
                     std::shared_ptr<const std::vector<double>> relevance,
                     std::span<const double> covered,
                     std::span<const double> caps,
                     std::vector<double> cluster_mass,
                     std::span<const std::uint8_t> in_set, double max_value,
                     std::span<const ElementId> shard)
      : index_(shard),
        sim_(std::move(sim)),
        config_(std::move(config)),
        relevance_(std::move(relevance)),
        cluster_mass_(std::move(cluster_mass)),
        max_value_(max_value) {
    const std::size_t n = sim_->size();
    in_set_.reserve(index_.size());
    for (const ElementId item : index_.items()) in_set_.push_back(in_set[item]);
    for (std::size_t i = 0; i < n; ++i) {
      const double* const row = sim_->row(i);
      bool touched = false;
      for (const ElementId item : index_.items()) {
        if (row[item] > 0.0) {
          touched = true;
          break;
        }
      }
      if (!touched) continue;
      rows_.push_back(static_cast<std::uint32_t>(i));
      covered_.push_back(covered[i]);
      caps_.push_back(caps[i]);
    }
  }

  std::size_t ground_size() const noexcept override { return sim_->size(); }
  double max_value() const noexcept override { return max_value_; }
  bool supports_compacted_shard_view() const noexcept override {
    return true;
  }

 protected:
  double do_gain(ElementId x) const override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    if (in_set_[row]) return 0.0;
    double gain = 0.0;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      const double before = std::min(covered_[r], caps_[r]);
      const double after =
          std::min(covered_[r] + sim_->at(rows_[r], x), caps_[r]);
      gain += after - before;
    }
    return gain + diversity_delta(x);
  }

  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override {
    // Same transposed kernel as the parent, streaming only surviving rows.
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (index_.row_of(xs[j]) == detail::ShardItemIndex::npos) {
        detail::throw_outside_shard(xs[j]);
      }
      out[j] = 0.0;
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      const double cov = covered_[r];
      const double cap = caps_[r];
      const double before = std::min(cov, cap);
      const double* const row = sim_->row(rows_[r]);
      for (std::size_t j = 0; j < xs.size(); ++j) {
        const double after = std::min(cov + row[xs[j]], cap);
        out[j] += after - before;
      }
    }
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = in_set_[index_.row_of(xs[j])] ? 0.0
                                             : out[j] + diversity_delta(xs[j]);
    }
  }

  double do_add(ElementId x) override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    if (in_set_[row]) return 0.0;
    in_set_[row] = 1;
    double gain = diversity_delta(x);
    if (!cluster_mass_.empty()) {
      cluster_mass_[config_->cluster_of[x]] += (*relevance_)[x];
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      const double before = std::min(covered_[r], caps_[r]);
      covered_[r] += sim_->at(rows_[r], x);
      gain += std::min(covered_[r], caps_[r]) - before;
    }
    return gain;
  }

  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<SaturatedShardView>(*this);
  }

  std::size_t do_state_bytes() const noexcept override {
    return rows_.capacity() * sizeof(std::uint32_t) +
           (covered_.capacity() + caps_.capacity() +
            cluster_mass_.capacity()) *
               sizeof(double) +
           in_set_.capacity() * sizeof(std::uint8_t) + index_.bytes();
  }

 private:
  double diversity_delta(ElementId x) const noexcept {
    if (cluster_mass_.empty() || config_->lambda <= 0.0) return 0.0;
    const std::uint32_t c = config_->cluster_of[x];
    const double mass = cluster_mass_[c];
    return config_->lambda *
           (std::sqrt(mass + (*relevance_)[x]) - std::sqrt(mass));
  }

  detail::ShardItemIndex index_;
  std::shared_ptr<const SimilarityMatrix> sim_;
  std::shared_ptr<const SaturatedCoverageConfig> config_;
  std::shared_ptr<const std::vector<double>> relevance_;
  std::vector<std::uint32_t> rows_;   // surviving global row indices, asc.
  std::vector<double> covered_;       // C_i(S) over surviving rows
  std::vector<double> caps_;          // γ·C_i(V) over surviving rows
  std::vector<double> cluster_mass_;  // full copy (one slot per cluster)
  std::vector<std::uint8_t> in_set_;  // per shard row
  double max_value_;
};

}  // namespace

SimilarityMatrix::SimilarityMatrix(std::size_t n, std::vector<double> values)
    : n_(n), values_(std::move(values)) {
  if (values_.size() != n * n) {
    throw std::invalid_argument("SimilarityMatrix: values size != n*n");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (values_[i * n + j] != values_[j * n + i]) {
        throw std::invalid_argument("SimilarityMatrix: not symmetric");
      }
    }
  }
  for (const double v : values_) {
    if (v < 0.0) {
      throw std::invalid_argument("SimilarityMatrix: negative similarity");
    }
  }
  row_sums_.resize(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_sums_[i] += values_[i * n + j];
  }
}

SaturatedCoverageOracle::SaturatedCoverageOracle(
    std::shared_ptr<const SimilarityMatrix> sim,
    SaturatedCoverageConfig config)
    : sim_(std::move(sim)), in_set_(sim_->size(), 0) {
  if (!(config.gamma > 0.0 && config.gamma <= 1.0)) {
    throw std::invalid_argument(
        "SaturatedCoverageOracle: gamma must be in (0, 1]");
  }
  if (config.lambda < 0.0) {
    throw std::invalid_argument(
        "SaturatedCoverageOracle: lambda must be non-negative");
  }
  if (!config.cluster_of.empty() &&
      config.cluster_of.size() != sim_->size()) {
    throw std::invalid_argument(
        "SaturatedCoverageOracle: one cluster label per element required");
  }

  const std::size_t n = sim_->size();
  covered_.assign(n, 0.0);
  caps_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    caps_[i] = config.gamma * sim_->row_sum(i);
  }

  // Relevance r_j = mean similarity to the corpus.
  auto relevance = std::make_shared<std::vector<double>>(n);
  for (std::size_t j = 0; j < n; ++j) {
    (*relevance)[j] = sim_->row_sum(j) / static_cast<double>(n);
  }
  relevance_ = std::move(relevance);

  if (!config.cluster_of.empty()) {
    std::uint32_t max_cluster = 0;
    for (const std::uint32_t c : config.cluster_of) {
      max_cluster = std::max(max_cluster, c);
    }
    cluster_mass_.assign(max_cluster + 1, 0.0);
  }
  config_ = std::make_shared<const SaturatedCoverageConfig>(std::move(config));
}

double SaturatedCoverageOracle::max_value() const noexcept {
  // Coverage term is capped by Σ_i γ·C_i(V); diversity by
  // λ·Σ_k sqrt(total cluster relevance).
  double cap_total = 0.0;
  for (const double c : caps_) cap_total += c;
  double diversity_cap = 0.0;
  if (!cluster_mass_.empty()) {
    std::vector<double> totals(cluster_mass_.size(), 0.0);
    for (std::size_t j = 0; j < sim_->size(); ++j) {
      totals[config_->cluster_of[j]] += (*relevance_)[j];
    }
    for (const double t : totals) diversity_cap += std::sqrt(t);
  }
  return cap_total + config_->lambda * diversity_cap;
}

double SaturatedCoverageOracle::diversity_delta(ElementId x) const noexcept {
  if (cluster_mass_.empty() || config_->lambda <= 0.0) return 0.0;
  const std::uint32_t c = config_->cluster_of[x];
  const double mass = cluster_mass_[c];
  return config_->lambda *
         (std::sqrt(mass + (*relevance_)[x]) - std::sqrt(mass));
}

double SaturatedCoverageOracle::do_gain(ElementId x) const {
  if (in_set_[x]) return 0.0;
  const std::size_t n = sim_->size();
  double gain = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double before = std::min(covered_[i], caps_[i]);
    const double after = std::min(covered_[i] + sim_->at(i, x), caps_[i]);
    gain += after - before;
  }
  return gain + diversity_delta(x);
}

void SaturatedCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                            std::span<double> out) const {
  // Transposed kernel: the scalar path reads one similarity *column* per
  // candidate (stride-n accesses). Here the outer loop walks rows, so each
  // row of the matrix is streamed once — contiguous loads — and covered_/
  // caps_ are read once per row instead of once per (row, candidate).
  // Accumulation per candidate still runs over rows in ascending order,
  // matching do_gain's floating-point sum exactly.
  const std::size_t n = sim_->size();
  for (std::size_t j = 0; j < xs.size(); ++j) out[j] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cov = covered_[i];
    const double cap = caps_[i];
    const double before = std::min(cov, cap);
    const double* const row = sim_->row(i);
    for (std::size_t j = 0; j < xs.size(); ++j) {
      const double after = std::min(cov + row[xs[j]], cap);
      out[j] += after - before;
    }
  }
  for (std::size_t j = 0; j < xs.size(); ++j) {
    out[j] = in_set_[xs[j]] ? 0.0 : out[j] + diversity_delta(xs[j]);
  }
}

double SaturatedCoverageOracle::do_add(ElementId x) {
  if (in_set_[x]) return 0.0;
  in_set_[x] = 1;
  const std::size_t n = sim_->size();
  double gain = diversity_delta(x);
  if (!cluster_mass_.empty()) {
    cluster_mass_[config_->cluster_of[x]] += (*relevance_)[x];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double before = std::min(covered_[i], caps_[i]);
    covered_[i] += sim_->at(i, x);
    gain += std::min(covered_[i], caps_[i]) - before;
  }
  return gain;
}

std::unique_ptr<SubmodularOracle> SaturatedCoverageOracle::do_clone() const {
  return std::make_unique<SaturatedCoverageOracle>(*this);
}

std::unique_ptr<SubmodularOracle> SaturatedCoverageOracle::do_shard_view(
    std::span<const ElementId> shard) const {
  return std::make_unique<SaturatedShardView>(sim_, config_, relevance_,
                                              covered_, caps_, cluster_mass_,
                                              in_set_, max_value(), shard);
}

std::size_t SaturatedCoverageOracle::do_state_bytes() const noexcept {
  return (covered_.capacity() + caps_.capacity() + cluster_mass_.capacity()) *
             sizeof(double) +
         in_set_.capacity() * sizeof(std::uint8_t);
}

}  // namespace bds
