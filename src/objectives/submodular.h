// The submodular-oracle abstraction every algorithm in src/core is written
// against.
//
// An oracle is *stateful*: it carries a current solution set S and answers
// marginal-gain queries Δ(x, S) = f(S ∪ {x}) − f(S) against it. Statefulness
// is what makes the objectives fast — coverage keeps a covered bitmap,
// exemplar clustering keeps a min-distance array — so a gain query costs
// O(|set x|) or O(n_sample) instead of re-evaluating f from scratch.
//
// The distributed algorithms rely on clone(): when round ℓ starts, the
// coordinator's oracle holds exactly the accumulated solution A_{ℓ-1}; each
// logical machine receives a clone of it (same set state, fresh evaluation
// counter) and greedily extends its own copy over its shard. Evaluation
// counters feed the cluster simulator's work accounting.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/element.h"

namespace bds::dist {
class ThreadPool;
}  // namespace bds::dist

namespace bds {

class SubmodularOracle {
 public:
  virtual ~SubmodularOracle() = default;

  // Δ(x, S) for the current S. Counts one oracle evaluation. For a monotone
  // f this is always >= 0 (sampled oracles may return small negatives from
  // estimation noise; callers clamp where it matters).
  double gain(ElementId x) {
    ++evals_;
    return do_gain(x);
  }

  // Batched marginal gains: out[i] = Δ(xs[i], S) for the current S.
  // Counts exactly xs.size() oracle evaluations — identical accounting to
  // xs.size() gain() calls — and produces exactly the same values (same
  // floating-point accumulation order) as the scalar path, so selections
  // driven by batched gains are bit-identical to scalar ones.
  // Precondition: out.size() >= xs.size().
  void gain_batch(std::span<const ElementId> xs, std::span<double> out) {
    evals_ += xs.size();
    do_gain_batch(xs, out);
  }

  // Allocating convenience overload.
  std::vector<double> gain_batch(std::span<const ElementId> xs) {
    std::vector<double> out(xs.size());
    gain_batch(xs, std::span<double>(out));
    return out;
  }

  // Read-only batch evaluation that leaves the evaluation counter alone —
  // the building block of chunked/parallel evaluators (core/batch_eval.h),
  // which charge the owning oracle once after the join via charge_evals().
  // Thread-safety contract: do_gain / do_gain_batch are const and must be
  // data-race-free against concurrent const evaluations on the same oracle
  // (no mutable caches); every in-tree oracle satisfies this.
  void gain_batch_unaccounted(std::span<const ElementId> xs,
                              std::span<double> out) const {
    do_gain_batch(xs, out);
  }

  // Oracle-internal parallel batch evaluation (see do_gain_batch_parallel):
  // returns true if the oracle ran the whole batch on `pool` itself —
  // values bit-identical to gain_batch, evaluation counter untouched (the
  // caller charges once, like gain_batch_unaccounted). Returns false when
  // the oracle has no internal split or the batch is too small to fork
  // for; the caller then falls back to chunking candidates.
  bool gain_batch_parallel_unaccounted(std::span<const ElementId> xs,
                                       std::span<double> out,
                                       dist::ThreadPool& pool) const {
    return do_gain_batch_parallel(xs, out, pool);
  }

  // Adds n to the evaluation counter. Pairs with gain_batch_unaccounted()
  // so a parallel evaluation of B elements still counts exactly B evals.
  void charge_evals(std::uint64_t n) noexcept { evals_ += n; }

  // Commits x into S and returns its realized marginal gain.
  // Counts one oracle evaluation. Adding an element twice is permitted and
  // contributes zero gain.
  double add(ElementId x) {
    ++evals_;
    const double g = do_add(x);
    set_.push_back(x);
    value_ += g;
    return g;
  }

  // f(S) for the current S (for sampled oracles: the current estimate).
  double value() const noexcept { return value_; }

  // The committed solution, in insertion order.
  const std::vector<ElementId>& current_set() const noexcept { return set_; }

  // Number of selectable elements (ids are [0, ground_size())).
  virtual std::size_t ground_size() const noexcept = 0;

  // A trivial upper bound on f over *any* set, if the objective has one
  // (coverage: universe size). +inf when no such bound exists.
  virtual double max_value() const noexcept {
    return std::numeric_limits<double>::infinity();
  }

  // Deep copy: identical set state, evaluation counter reset to zero.
  std::unique_ptr<SubmodularOracle> clone() const {
    auto copy = do_clone();
    copy->evals_ = 0;
    return copy;
  }

  // Shard-compacted view: an oracle whose gains/adds over the elements of
  // `shard` are bit-identical to this oracle's (same values, same FP
  // accumulation order, same evaluation accounting — the gain_batch
  // contract), but whose mutable state covers only the universe slice
  // reachable from the shard, so a worker's memory footprint scales with
  // the shard instead of the ground set. Querying an element outside the
  // shard on a compacted view throws std::out_of_range. Objectives without
  // a compacted representation fall back to clone() (every element valid).
  // Like clone(), the view carries the committed set and value and starts
  // with a zero evaluation counter.
  std::unique_ptr<SubmodularOracle> shard_view(
      std::span<const ElementId> shard) const {
    auto view = do_shard_view(shard);
    view->set_ = set_;
    view->value_ = value_;
    view->evals_ = 0;
    view->corpus_epoch_ = corpus_epoch_;
    return view;
  }

  // Whether shard_view() returns a genuinely compacted oracle (O(shard)
  // state) rather than the clone fallback.
  virtual bool supports_compacted_shard_view() const noexcept {
    return false;
  }

  // Heap footprint in bytes of this oracle's per-instance mutable state —
  // what clone() would copy — excluding structures shared immutably across
  // clones (CSR arrays, point matrices, weights). Feeds the cluster
  // simulator's bytes_cloned / peak_worker_state_bytes accounting.
  std::size_t state_bytes() const noexcept {
    return do_state_bytes() + set_.capacity() * sizeof(ElementId);
  }

  // --- dynamic-corpus support (data/dynamic.h) ---

  // Epoch of the data::DynamicCorpus snapshot this oracle answers for
  // (0 for frozen corpora). Clones inherit it via the copy constructor;
  // shard_view() stamps it onto the view. data::require_epoch() turns a
  // mismatch into a StaleOracleError naming the corpus, so an oracle can
  // never silently answer for a ground set that has moved on.
  std::uint64_t corpus_epoch() const noexcept { return corpus_epoch_; }
  void stamp_corpus_epoch(std::uint64_t epoch) noexcept {
    corpus_epoch_ = epoch;
  }

  // True when the oracle absorbs corpus mutations in place (unweighted
  // coverage: O(degree) via the inverted index). False means callers must
  // rebuild from the mutated corpus — the rebuild-on-epoch-change fallback
  // behind the same interface (data::make_dynamic_oracle).
  virtual bool supports_dynamic_updates() const noexcept { return false; }

  // Structural updates for dynamic corpora: a freshly inserted ground
  // element with its payload, or a tombstoned one. `new_epoch` restamps
  // the oracle in the same call so state and version move together. Both
  // throw std::logic_error when the oracle has no incremental path (see
  // supports_dynamic_updates).
  void apply_insert(ElementId id, std::span<const std::uint32_t> items,
                    std::uint64_t new_epoch) {
    do_apply_insert(id, items);
    corpus_epoch_ = new_epoch;
  }
  void apply_erase(ElementId id, std::uint64_t new_epoch) {
    do_apply_erase(id);
    corpus_epoch_ = new_epoch;
  }

  // Evaluations (gain + add calls) performed since construction/clone.
  std::uint64_t evals() const noexcept { return evals_; }

  // Zeroes the evaluation counter (e.g. after replaying a seed set into a
  // freshly built oracle, so accounting matches a clone of the same state).
  void reset_evals() noexcept { evals_ = 0; }

 protected:
  SubmodularOracle() = default;
  SubmodularOracle(const SubmodularOracle&) = default;
  SubmodularOracle& operator=(const SubmodularOracle&) = default;

  virtual double do_gain(ElementId x) const = 0;
  virtual double do_add(ElementId x) = 0;
  virtual std::unique_ptr<SubmodularOracle> do_clone() const = 0;

  // Compacted-view factory behind shard_view(). The default is the clone
  // fallback; coverage-family objectives override it with sliced-CSR views
  // (see objectives/shard_view.h for the shared building blocks).
  virtual std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const {
    (void)shard;
    return do_clone();
  }

  // Per-instance mutable state footprint, excluding the base-class set
  // (added by state_bytes()). 0 means "unknown / negligible".
  virtual std::size_t do_state_bytes() const noexcept { return 0; }

  // Hooks behind apply_insert / apply_erase. The defaults refuse: an
  // oracle without an incremental structure must be rebuilt, and silently
  // accepting the call would desynchronize it from its corpus.
  virtual void do_apply_insert(ElementId id,
                               std::span<const std::uint32_t> items) {
    (void)id;
    (void)items;
    throw std::logic_error(
        "apply_insert: oracle has no incremental update path; rebuild it "
        "from the mutated corpus (data::make_dynamic_oracle)");
  }
  virtual void do_apply_erase(ElementId id) {
    (void)id;
    throw std::logic_error(
        "apply_erase: oracle has no incremental update path; rebuild it "
        "from the mutated corpus (data::make_dynamic_oracle)");
  }

  // Kernel behind gain_batch(). The default is the scalar loop (one
  // virtual do_gain per element); objectives with cache-friendly batched
  // kernels override it. Overrides must return exactly the values do_gain
  // would — same accumulation order, element by element — and must remain
  // const-thread-safe (see gain_batch_unaccounted).
  virtual void do_gain_batch(std::span<const ElementId> xs,
                             std::span<double> out) const {
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = do_gain(xs[i]);
  }

  // Hook behind gain_batch_parallel_unaccounted(). Oracles whose *single*
  // evaluation is a large scan (exemplar clustering: O(n·dim) per
  // candidate) override this to split their internal cost dimension over
  // the pool with a deterministic chunk-ordered reduction and return true.
  // The default declines, which makes core/batch_eval.h partition the
  // candidate span instead. Implementations must be const-thread-safe and
  // bit-identical to do_gain_batch.
  virtual bool do_gain_batch_parallel(std::span<const ElementId> xs,
                                      std::span<double> out,
                                      dist::ThreadPool& pool) const {
    (void)xs;
    (void)out;
    (void)pool;
    return false;
  }

 private:
  std::vector<ElementId> set_;
  double value_ = 0.0;
  std::uint64_t evals_ = 0;
  std::uint64_t corpus_epoch_ = 0;
};

// Clones `proto` and commits every element of `seed` into the copy.
// This is the "oracle for g(B) = f(B ∪ S) − f(S)" the analysis in §2.1 works
// with: gains of the returned oracle are exactly marginals on top of `seed`.
std::unique_ptr<SubmodularOracle> seeded_clone(
    const SubmodularOracle& proto, std::span<const ElementId> seed);

// Evaluates f(S) from scratch on a clone of `proto` (which may already hold
// elements; they are included). Useful for tests and exact reporting.
double evaluate_set(const SubmodularOracle& proto,
                    std::span<const ElementId> extra);

}  // namespace bds
