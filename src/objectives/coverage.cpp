#include "objectives/coverage.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "objectives/shard_view.h"

namespace bds {

namespace {

// Shared build step for the coverage-family shard views: a sliced CSR over
// exactly the universe elements reachable from the shard (rows keep their
// original entry order — the bit-identical accumulation contract), the
// parent's covered flags projected onto the slice, and the local→global
// element map the weighted view needs to slice its weight vector.
struct SlicedCoverage {
  detail::ShardItemIndex index;
  std::vector<std::uint32_t> offsets;          // index.size() + 1
  std::vector<std::uint32_t> entries;          // local universe ids
  std::vector<std::uint8_t> covered;           // per touched universe element
  std::vector<std::uint32_t> local_to_global;  // per touched universe element

  SlicedCoverage(const SetSystem& sets, std::span<const std::uint8_t> parent,
                 std::span<const ElementId> shard)
      : index(shard) {
    std::size_t total = 0;
    for (const ElementId item : index.items()) total += sets.set_size(item);
    offsets.reserve(index.size() + 1);
    offsets.push_back(0);
    entries.reserve(total);
    detail::U32LocalIdMap remap(total);
    for (const ElementId item : index.items()) {
      for (const std::uint32_t e : sets.set_items(item)) {
        const auto next = static_cast<std::uint32_t>(covered.size());
        const std::uint32_t local = remap.find_or_insert(e, next);
        if (local == next) {  // first touch: assign the next local id
          covered.push_back(parent[e]);
          local_to_global.push_back(e);
        }
        entries.push_back(local);
      }
      offsets.push_back(static_cast<std::uint32_t>(entries.size()));
    }
  }

  std::size_t bytes() const noexcept {
    return offsets.capacity() * sizeof(std::uint32_t) +
           entries.capacity() * sizeof(std::uint32_t) +
           covered.capacity() * sizeof(std::uint8_t) + index.bytes();
  }
};

// Compacted view of a CoverageOracle: O(shard) state, gains/adds over shard
// members bit-identical to the parent's (integer counting over the same row
// in the same order). Elements outside the shard throw.
class CoverageShardView final : public SubmodularOracle {
 public:
  CoverageShardView(const SetSystem& sets,
                    std::span<const std::uint8_t> covered,
                    std::span<const ElementId> shard)
      : slice_(sets, covered, shard),
        ground_size_(sets.num_sets()),
        universe_size_(sets.universe_size()) {
    slice_.local_to_global = {};  // only the weighted view needs the map
  }

  std::size_t ground_size() const noexcept override { return ground_size_; }
  double max_value() const noexcept override {
    return static_cast<double>(universe_size_);
  }
  bool supports_compacted_shard_view() const noexcept override {
    return true;
  }

 protected:
  double do_gain(ElementId x) const override {
    const std::size_t row = slice_.index.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    std::uint64_t fresh = 0;
    for (std::size_t e = slice_.offsets[row]; e < slice_.offsets[row + 1];
         ++e) {
      fresh += (slice_.covered[slice_.entries[e]] == 0);
    }
    return static_cast<double>(fresh);
  }

  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override {
    const std::uint32_t* const offsets = slice_.offsets.data();
    const std::uint32_t* const entries = slice_.entries.data();
    const std::uint8_t* const covered = slice_.covered.data();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t row = slice_.index.row_of(xs[i]);
      if (row == detail::ShardItemIndex::npos) {
        detail::throw_outside_shard(xs[i]);
      }
      std::uint64_t fresh = 0;
      for (std::size_t e = offsets[row]; e < offsets[row + 1]; ++e) {
        fresh += (covered[entries[e]] == 0);
      }
      out[i] = static_cast<double>(fresh);
    }
  }

  double do_add(ElementId x) override {
    const std::size_t row = slice_.index.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    std::uint64_t fresh = 0;
    for (std::size_t e = slice_.offsets[row]; e < slice_.offsets[row + 1];
         ++e) {
      std::uint8_t& flag = slice_.covered[slice_.entries[e]];
      if (flag == 0) {
        flag = 1;
        ++fresh;
      }
    }
    return static_cast<double>(fresh);
  }

  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<CoverageShardView>(*this);
  }

  std::size_t do_state_bytes() const noexcept override {
    return slice_.bytes();
  }

 private:
  SlicedCoverage slice_;
  std::size_t ground_size_;
  std::uint32_t universe_size_;
};

// Weighted counterpart: additionally slices the weight vector, so the gain
// sum walks the same row in the same order over equal weight values —
// bit-identical floating-point accumulation.
class WeightedCoverageShardView final : public SubmodularOracle {
 public:
  WeightedCoverageShardView(const SetSystem& sets,
                            std::span<const std::uint8_t> covered,
                            std::span<const double> weights,
                            double total_weight,
                            std::span<const ElementId> shard)
      : slice_(sets, covered, shard),
        ground_size_(sets.num_sets()),
        total_weight_(total_weight) {
    weights_.reserve(slice_.local_to_global.size());
    for (const std::uint32_t e : slice_.local_to_global) {
      weights_.push_back(weights[e]);
    }
    slice_.local_to_global = {};
  }

  std::size_t ground_size() const noexcept override { return ground_size_; }
  double max_value() const noexcept override { return total_weight_; }
  bool supports_compacted_shard_view() const noexcept override {
    return true;
  }

 protected:
  double do_gain(ElementId x) const override {
    const std::size_t row = slice_.index.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    double fresh = 0.0;
    for (std::size_t e = slice_.offsets[row]; e < slice_.offsets[row + 1];
         ++e) {
      const std::uint32_t el = slice_.entries[e];
      if (slice_.covered[el] == 0) fresh += weights_[el];
    }
    return fresh;
  }

  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override {
    const std::uint32_t* const offsets = slice_.offsets.data();
    const std::uint32_t* const entries = slice_.entries.data();
    const std::uint8_t* const covered = slice_.covered.data();
    const double* const w = weights_.data();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t row = slice_.index.row_of(xs[i]);
      if (row == detail::ShardItemIndex::npos) {
        detail::throw_outside_shard(xs[i]);
      }
      double fresh = 0.0;
      for (std::size_t e = offsets[row]; e < offsets[row + 1]; ++e) {
        const std::uint32_t el = entries[e];
        if (covered[el] == 0) fresh += w[el];
      }
      out[i] = fresh;
    }
  }

  double do_add(ElementId x) override {
    const std::size_t row = slice_.index.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    double fresh = 0.0;
    for (std::size_t e = slice_.offsets[row]; e < slice_.offsets[row + 1];
         ++e) {
      const std::uint32_t el = slice_.entries[e];
      if (slice_.covered[el] == 0) {
        slice_.covered[el] = 1;
        fresh += weights_[el];
      }
    }
    return fresh;
  }

  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<WeightedCoverageShardView>(*this);
  }

  std::size_t do_state_bytes() const noexcept override {
    return slice_.bytes() + weights_.capacity() * sizeof(double);
  }

 private:
  SlicedCoverage slice_;
  std::vector<double> weights_;  // per touched universe element
  std::size_t ground_size_;
  double total_weight_;
};

}  // namespace

SetSystem::SetSystem(std::vector<std::vector<std::uint32_t>> sets,
                     std::uint32_t universe_size)
    : universe_size_(universe_size) {
  owned_offsets_.reserve(sets.size() + 1);
  owned_offsets_.push_back(0);
  // Deduplicate within each set so gain() and add() always agree on the
  // contribution of a set containing a repeated element. Dedup happens
  // before the reserve: the pre-dedup total would over-reserve and strand
  // the slack for the lifetime of the (immutable, widely shared) system.
  std::size_t total = 0;
  for (auto& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    total += s.size();
  }
  owned_entries_.reserve(total);
  for (const auto& s : sets) {
    for (const std::uint32_t e : s) {
      if (e >= universe_size) {
        throw std::out_of_range("SetSystem: element beyond universe");
      }
      owned_entries_.push_back(e);
    }
    owned_offsets_.push_back(owned_entries_.size());
  }
  num_sets_ = sets.size();
  num_entries_ = owned_entries_.size();
}

SetSystem::SetSystem(const std::uint64_t* offsets, std::size_t num_sets,
                     const std::uint32_t* entries, std::size_t num_entries,
                     std::uint32_t universe_size,
                     std::shared_ptr<const void> storage)
    : storage_(std::move(storage)),
      ext_offsets_(offsets),
      ext_entries_(entries),
      num_sets_(num_sets),
      num_entries_(num_entries),
      universe_size_(universe_size) {
  if (storage_ == nullptr || offsets == nullptr ||
      (entries == nullptr && num_entries != 0)) {
    throw std::invalid_argument("SetSystem: null external CSR storage");
  }
  if (offsets[0] != 0 || offsets[num_sets] != num_entries) {
    throw std::invalid_argument("SetSystem: external CSR offsets corrupt");
  }
}

CoverageOracle::CoverageOracle(std::shared_ptr<const SetSystem> sets)
    : sets_(std::move(sets)), covered_(sets_->universe_size(), 0) {}

double CoverageOracle::do_gain(ElementId x) const {
  std::uint64_t fresh = 0;
  for (const std::uint32_t e : sets_->set_items(x)) {
    fresh += (covered_[e] == 0);
  }
  return static_cast<double>(fresh);
}

void CoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                   std::span<double> out) const {
  // One pass over the CSR arrays with all bases hoisted into registers: no
  // per-element virtual dispatch, no span re-materialization, and the
  // covered bitmap stays hot across consecutive candidates.
  const std::uint64_t* const offsets = sets_->offsets_data();
  const std::uint32_t* const entries = sets_->entries_data();
  const std::uint8_t* const covered = covered_.data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t begin = offsets[xs[i]];
    const std::size_t end = offsets[xs[i] + 1];
    std::uint64_t fresh = 0;
    for (std::size_t e = begin; e < end; ++e) {
      fresh += (covered[entries[e]] == 0);
    }
    out[i] = static_cast<double>(fresh);
  }
}

double CoverageOracle::do_add(ElementId x) {
  std::uint64_t fresh = 0;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) {
      covered_[e] = 1;
      ++fresh;
    }
  }
  covered_count_ += fresh;
  return static_cast<double>(fresh);
}

std::unique_ptr<SubmodularOracle> CoverageOracle::do_clone() const {
  return std::make_unique<CoverageOracle>(*this);
}

std::unique_ptr<SubmodularOracle> CoverageOracle::do_shard_view(
    std::span<const ElementId> shard) const {
  return std::make_unique<CoverageShardView>(*sets_, covered_, shard);
}

std::size_t CoverageOracle::do_state_bytes() const noexcept {
  return covered_.capacity() * sizeof(std::uint8_t);
}

WeightedCoverageOracle::WeightedCoverageOracle(
    std::shared_ptr<const SetSystem> sets, std::vector<double> weights)
    : sets_(std::move(sets)),
      covered_(sets_->universe_size(), 0) {
  if (weights.size() != sets_->universe_size()) {
    throw std::invalid_argument(
        "WeightedCoverageOracle: one weight per universe element required");
  }
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "WeightedCoverageOracle: weights must be non-negative");
    }
    total_weight_ += w;
  }
  weights_ = std::make_shared<const std::vector<double>>(std::move(weights));
}

double WeightedCoverageOracle::do_gain(ElementId x) const {
  double fresh = 0.0;
  const auto& w = *weights_;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) fresh += w[e];
  }
  return fresh;
}

void WeightedCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                           std::span<double> out) const {
  const std::uint64_t* const offsets = sets_->offsets_data();
  const std::uint32_t* const entries = sets_->entries_data();
  const std::uint8_t* const covered = covered_.data();
  const double* const w = weights_->data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t begin = offsets[xs[i]];
    const std::size_t end = offsets[xs[i] + 1];
    double fresh = 0.0;
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t el = entries[e];
      if (covered[el] == 0) fresh += w[el];
    }
    out[i] = fresh;
  }
}

double WeightedCoverageOracle::do_add(ElementId x) {
  double fresh = 0.0;
  const auto& w = *weights_;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) {
      covered_[e] = 1;
      fresh += w[e];
    }
  }
  return fresh;
}

std::unique_ptr<SubmodularOracle> WeightedCoverageOracle::do_clone() const {
  return std::make_unique<WeightedCoverageOracle>(*this);
}

std::unique_ptr<SubmodularOracle> WeightedCoverageOracle::do_shard_view(
    std::span<const ElementId> shard) const {
  return std::make_unique<WeightedCoverageShardView>(
      *sets_, covered_, *weights_, total_weight_, shard);
}

std::size_t WeightedCoverageOracle::do_state_bytes() const noexcept {
  return covered_.capacity() * sizeof(std::uint8_t);
}

}  // namespace bds
