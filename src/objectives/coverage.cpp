#include "objectives/coverage.h"

#include <algorithm>
#include <stdexcept>

namespace bds {

SetSystem::SetSystem(std::vector<std::vector<std::uint32_t>> sets,
                     std::uint32_t universe_size)
    : universe_size_(universe_size) {
  offsets_.reserve(sets.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& s : sets) total += s.size();
  entries_.reserve(total);
  for (auto& s : sets) {
    // Deduplicate within each set so gain() and add() always agree on the
    // contribution of a set containing a repeated element.
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    for (const std::uint32_t e : s) {
      if (e >= universe_size) {
        throw std::out_of_range("SetSystem: element beyond universe");
      }
      entries_.push_back(e);
    }
    offsets_.push_back(entries_.size());
  }
}

CoverageOracle::CoverageOracle(std::shared_ptr<const SetSystem> sets)
    : sets_(std::move(sets)), covered_(sets_->universe_size(), 0) {}

double CoverageOracle::do_gain(ElementId x) const {
  std::uint64_t fresh = 0;
  for (const std::uint32_t e : sets_->set_items(x)) {
    fresh += (covered_[e] == 0);
  }
  return static_cast<double>(fresh);
}

double CoverageOracle::do_add(ElementId x) {
  std::uint64_t fresh = 0;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) {
      covered_[e] = 1;
      ++fresh;
    }
  }
  covered_count_ += fresh;
  return static_cast<double>(fresh);
}

std::unique_ptr<SubmodularOracle> CoverageOracle::do_clone() const {
  return std::make_unique<CoverageOracle>(*this);
}

WeightedCoverageOracle::WeightedCoverageOracle(
    std::shared_ptr<const SetSystem> sets, std::vector<double> weights)
    : sets_(std::move(sets)),
      covered_(sets_->universe_size(), 0) {
  if (weights.size() != sets_->universe_size()) {
    throw std::invalid_argument(
        "WeightedCoverageOracle: one weight per universe element required");
  }
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "WeightedCoverageOracle: weights must be non-negative");
    }
    total_weight_ += w;
  }
  weights_ = std::make_shared<const std::vector<double>>(std::move(weights));
}

double WeightedCoverageOracle::do_gain(ElementId x) const {
  double fresh = 0.0;
  const auto& w = *weights_;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) fresh += w[e];
  }
  return fresh;
}

double WeightedCoverageOracle::do_add(ElementId x) {
  double fresh = 0.0;
  const auto& w = *weights_;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) {
      covered_[e] = 1;
      fresh += w[e];
    }
  }
  return fresh;
}

std::unique_ptr<SubmodularOracle> WeightedCoverageOracle::do_clone() const {
  return std::make_unique<WeightedCoverageOracle>(*this);
}

}  // namespace bds
