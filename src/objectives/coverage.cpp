#include "objectives/coverage.h"

#include <algorithm>
#include <stdexcept>

namespace bds {

SetSystem::SetSystem(std::vector<std::vector<std::uint32_t>> sets,
                     std::uint32_t universe_size)
    : universe_size_(universe_size) {
  offsets_.reserve(sets.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& s : sets) total += s.size();
  entries_.reserve(total);
  for (auto& s : sets) {
    // Deduplicate within each set so gain() and add() always agree on the
    // contribution of a set containing a repeated element.
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    for (const std::uint32_t e : s) {
      if (e >= universe_size) {
        throw std::out_of_range("SetSystem: element beyond universe");
      }
      entries_.push_back(e);
    }
    offsets_.push_back(entries_.size());
  }
}

CoverageOracle::CoverageOracle(std::shared_ptr<const SetSystem> sets)
    : sets_(std::move(sets)), covered_(sets_->universe_size(), 0) {}

double CoverageOracle::do_gain(ElementId x) const {
  std::uint64_t fresh = 0;
  for (const std::uint32_t e : sets_->set_items(x)) {
    fresh += (covered_[e] == 0);
  }
  return static_cast<double>(fresh);
}

void CoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                   std::span<double> out) const {
  // One pass over the CSR arrays with all bases hoisted into registers: no
  // per-element virtual dispatch, no span re-materialization, and the
  // covered bitmap stays hot across consecutive candidates.
  const std::size_t* const offsets = sets_->offsets_data();
  const std::uint32_t* const entries = sets_->entries_data();
  const std::uint8_t* const covered = covered_.data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t begin = offsets[xs[i]];
    const std::size_t end = offsets[xs[i] + 1];
    std::uint64_t fresh = 0;
    for (std::size_t e = begin; e < end; ++e) {
      fresh += (covered[entries[e]] == 0);
    }
    out[i] = static_cast<double>(fresh);
  }
}

double CoverageOracle::do_add(ElementId x) {
  std::uint64_t fresh = 0;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) {
      covered_[e] = 1;
      ++fresh;
    }
  }
  covered_count_ += fresh;
  return static_cast<double>(fresh);
}

std::unique_ptr<SubmodularOracle> CoverageOracle::do_clone() const {
  return std::make_unique<CoverageOracle>(*this);
}

WeightedCoverageOracle::WeightedCoverageOracle(
    std::shared_ptr<const SetSystem> sets, std::vector<double> weights)
    : sets_(std::move(sets)),
      covered_(sets_->universe_size(), 0) {
  if (weights.size() != sets_->universe_size()) {
    throw std::invalid_argument(
        "WeightedCoverageOracle: one weight per universe element required");
  }
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "WeightedCoverageOracle: weights must be non-negative");
    }
    total_weight_ += w;
  }
  weights_ = std::make_shared<const std::vector<double>>(std::move(weights));
}

double WeightedCoverageOracle::do_gain(ElementId x) const {
  double fresh = 0.0;
  const auto& w = *weights_;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) fresh += w[e];
  }
  return fresh;
}

void WeightedCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                           std::span<double> out) const {
  const std::size_t* const offsets = sets_->offsets_data();
  const std::uint32_t* const entries = sets_->entries_data();
  const std::uint8_t* const covered = covered_.data();
  const double* const w = weights_->data();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t begin = offsets[xs[i]];
    const std::size_t end = offsets[xs[i] + 1];
    double fresh = 0.0;
    for (std::size_t e = begin; e < end; ++e) {
      const std::uint32_t el = entries[e];
      if (covered[el] == 0) fresh += w[el];
    }
    out[i] = fresh;
  }
}

double WeightedCoverageOracle::do_add(ElementId x) {
  double fresh = 0.0;
  const auto& w = *weights_;
  for (const std::uint32_t e : sets_->set_items(x)) {
    if (covered_[e] == 0) {
      covered_[e] = 1;
      fresh += w[e];
    }
  }
  return fresh;
}

std::unique_ptr<SubmodularOracle> WeightedCoverageOracle::do_clone() const {
  return std::make_unique<WeightedCoverageOracle>(*this);
}

}  // namespace bds
