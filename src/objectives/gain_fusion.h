// Cross-query gain fusion for exact exemplar oracles sharing one PointSet.
//
// In the serving path (serve/service.h), several concurrent queries run
// distributed algorithms over the *same* corpus at once. Each of their
// oracle evaluations is an O(n·dim) streaming scan over the point matrix —
// memory-bound work that the kernel layer already tiles kern::kGainTile
// candidates wide (gain_tile). But a lazy-greedy step evaluates only one
// or two candidates at a time, leaving most of the tile empty: every
// concurrent query streams the whole matrix for a sliver of arithmetic.
//
// A GainFusionGroup turns those concurrent slivers into full tiles. It is
// a flat-combining aggregation point shared by every oracle over one
// PointSet: callers enqueue their (candidates, min-dist state) request
// under a mutex; the first caller becomes the combiner, drains everything
// pending, and executes all requests together as kern::gain_tile_mq tiles
// — one streaming pass over the rows serves up to kGainTile candidates
// from *different* queries. Non-combiners sleep on a condition variable
// until their results are filled in. Requests that find the group idle
// execute immediately (a solo round), so the single-query case pays one
// uncontended mutex acquisition and nothing else; fusion happens exactly
// when scans genuinely overlap in time, with no timers or batching delays.
//
// ## Bit-identity
//
// gain_tile_mq guarantees per-candidate arithmetic independent of tile
// composition (util/kernels.h, tested in test_kernels), and the combiner
// accumulates each candidate's chunk partials in ascending kern::kCostChunk
// order — exactly the canonical grouping the solo paths use. Fused answers
// are therefore bit-identical to unfused ones: attaching a fusion group
// never perturbs any query's selections.
//
// ## Scope
//
// Only the exact ExemplarOracle participates (identity cost-term mapping,
// shared cost count = the point count). Sampled oracles have per-instance
// id indirections and counts, so they evaluate solo. Legacy mode
// (BDS_KERNEL=legacy) bypasses fusion entirely — callers keep the
// sequential scans. Gains only; add() (a mutation) is never fused.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/element.h"

namespace bds {

class PointSet;

// Counters describing how much fusion actually happened (for serve stats
// and the bench_serve report). A "round" is one combiner drain; a round
// fusing requests from >1 evaluate() call is a "fused round".
struct FusionStats {
  std::uint64_t requests = 0;          // evaluate() calls
  std::uint64_t rounds = 0;            // combiner drain rounds
  std::uint64_t fused_rounds = 0;      // rounds combining > 1 request
  std::uint64_t candidates = 0;        // candidate gains evaluated
  std::uint64_t fused_candidates = 0;  // of those, in fused rounds
  std::uint64_t mq_tiles = 0;          // gain_tile_mq invocations
};

class GainFusionGroup {
 public:
  // The group serves oracles evaluating against exactly this point set.
  explicit GainFusionGroup(std::shared_ptr<const PointSet> points);

  GainFusionGroup(const GainFusionGroup&) = delete;
  GainFusionGroup& operator=(const GainFusionGroup&) = delete;

  const std::shared_ptr<const PointSet>& points() const noexcept {
    return points_;
  }

  // Evaluates out[j] = scale · Σ_t max(0, min_dist[t] − d(t, xs[j])) over
  // all cost terms t (the caller's full min-dist array, one entry per
  // point), possibly fused with other in-flight calls. Blocks until the
  // caller's results are written. min_dist and out must stay valid for the
  // duration of the call (they do: callers block). Thread-safe.
  void evaluate(std::span<const ElementId> xs, const double* min_dist,
                double scale, std::span<double> out);

  FusionStats stats() const;

 private:
  struct Request {
    std::span<const ElementId> xs;
    const double* min_dist;
    double scale;
    std::span<double> out;
    bool done = false;
  };

  // Executes one drained round outside the lock.
  void run_round(const std::vector<Request*>& round);

  std::shared_ptr<const PointSet> points_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Request*> pending_;
  bool combiner_active_ = false;
  FusionStats stats_;
};

}  // namespace bds
