#include "objectives/submodular.h"

namespace bds {

std::unique_ptr<SubmodularOracle> seeded_clone(
    const SubmodularOracle& proto, std::span<const ElementId> seed) {
  auto oracle = proto.clone();
  for (const ElementId x : seed) oracle->add(x);
  return oracle;
}

double evaluate_set(const SubmodularOracle& proto,
                    std::span<const ElementId> extra) {
  const auto oracle = seeded_clone(proto, extra);
  return oracle->value();
}

}  // namespace bds
