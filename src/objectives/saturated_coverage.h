// Document-summarization objective (the paper's intro application [20],
// Lin & Bilmes, "A class of submodular functions for document
// summarization"):
//
//   L(S) = Σ_{i∈V} min( C_i(S), γ·C_i(V) )          (saturated coverage)
//        + λ · Σ_k sqrt( Σ_{j ∈ S ∩ P_k} r_j )       (diversity reward)
//
// where C_i(S) = Σ_{j∈S} w_ij is how much sentence i is "covered" by the
// summary S under pairwise similarities w, γ ∈ (0,1] saturates each
// sentence's contribution, P_k is a clustering of the sentences and
// r_j = (1/n)·Σ_i w_ij is sentence j's mean relevance. Both terms are
// monotone submodular, hence so is L.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// Dense symmetric pairwise similarity matrix (row-major), values >= 0.
class SimilarityMatrix {
 public:
  // Preconditions: values.size() == n*n, symmetric and non-negative
  // (validated; throws std::invalid_argument).
  SimilarityMatrix(std::size_t n, std::vector<double> values);

  std::size_t size() const noexcept { return n_; }
  double at(std::size_t i, std::size_t j) const noexcept {
    return values_[i * n_ + j];
  }
  // Row i as a contiguous span (row-major storage) for batched kernels.
  const double* row(std::size_t i) const noexcept {
    return values_.data() + i * n_;
  }
  // Row sum Σ_j w_ij (used for the saturation caps and relevance scores).
  double row_sum(std::size_t i) const noexcept { return row_sums_[i]; }

 private:
  std::size_t n_;
  std::vector<double> values_;
  std::vector<double> row_sums_;
};

struct SaturatedCoverageConfig {
  double gamma = 0.25;  // saturation fraction, in (0, 1]
  // Diversity reward: cluster labels (one per element, ids < n_clusters)
  // and weight λ. Leave cluster_of empty to disable the term.
  std::vector<std::uint32_t> cluster_of;
  double lambda = 0.0;
};

class SaturatedCoverageOracle final : public SubmodularOracle {
 public:
  // Throws std::invalid_argument on gamma outside (0,1], negative lambda,
  // or a cluster label vector of the wrong length.
  SaturatedCoverageOracle(std::shared_ptr<const SimilarityMatrix> sim,
                          SaturatedCoverageConfig config);

  std::size_t ground_size() const noexcept override { return sim_->size(); }
  double max_value() const noexcept override;
  bool supports_compacted_shard_view() const noexcept override { return true; }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const override;
  std::size_t do_state_bytes() const noexcept override;

 private:
  double diversity_delta(ElementId x) const noexcept;

  std::shared_ptr<const SimilarityMatrix> sim_;
  std::shared_ptr<const SaturatedCoverageConfig> config_;
  std::shared_ptr<const std::vector<double>> relevance_;  // r_j
  std::vector<double> covered_;        // C_i(S)
  std::vector<double> caps_;           // γ·C_i(V)
  std::vector<double> cluster_mass_;   // Σ_{j∈S∩P_k} r_j
  std::vector<std::uint8_t> in_set_;
};

}  // namespace bds
