// Building blocks for shard-compacted oracle views (the worker memory
// model's fast path — see DESIGN.md §"Worker memory model").
//
// A distributed round hands each of the m machines a shard of element ids.
// Cloning the coordinator oracle per machine costs O(U) (covered bitmap) or
// O(n) (min-distance array) per worker, so a round pays O(m·U) allocation
// and copy traffic even though a shard only ever touches a small slice of
// the universe. A *shard view* instead materializes exactly that slice:
//
//   * a local↔global id remap over the universe elements reachable from the
//     shard's CSR rows (built with the open-addressing map below, never
//     with O(U) scratch — the build must also be shard-proportional);
//   * a sliced CSR whose rows keep their original entry order, so gain and
//     add accumulate floating-point contributions in exactly the order the
//     global oracle does (the bit-identical contract of gain_batch);
//   * the coordinator's accumulated state (covered flags, uncovered
//     probabilities, …) projected onto the touched slice — seeding by state
//     projection, not by replaying S, so building costs O(shard), plus
//     O(Σ|row of s|) for seed rows that intersect the slice where a row
//     walk is unavoidable.
//
// The concrete view classes live next to their objectives (coverage.cpp,
// prob_coverage.cpp, …), wired in via SubmodularOracle::do_shard_view; this
// header only provides the shared machinery.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/element.h"

namespace bds::detail {

// Minimal open-addressing hash map from std::uint32_t keys to
// std::uint32_t values, used to assign local ids to touched universe
// elements in O(#keys) space. Power-of-two capacity, linear probing; no
// deletion (views are built once). Key 0xFFFFFFFF is reserved as "empty".
class U32LocalIdMap {
 public:
  static constexpr std::uint32_t kEmpty =
      std::numeric_limits<std::uint32_t>::max();

  explicit U32LocalIdMap(std::size_t expected_keys = 0);

  // Returns the value stored for `key`, inserting `next_value` (and
  // returning it) if the key is new.
  std::uint32_t find_or_insert(std::uint32_t key, std::uint32_t next_value);

  // Returns the value for `key`, or kEmpty when absent.
  std::uint32_t find(std::uint32_t key) const noexcept;

  std::size_t size() const noexcept { return size_; }
  // Heap footprint of the table itself (counts toward view state bytes).
  std::size_t table_bytes() const noexcept {
    return (keys_.capacity() + values_.capacity()) * sizeof(std::uint32_t);
  }

 private:
  void grow();

  std::vector<std::uint32_t> keys_;    // kEmpty = free slot
  std::vector<std::uint32_t> values_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;               // capacity - 1 (capacity is 2^k)
};

// Sorted-unique shard members plus O(1) global-id → local-row lookup.
// Matches unique_candidates()' canonical order, so view row r corresponds
// to the r-th distinct shard element in ascending id order. row_of is on
// the per-evaluation hot path (every view gain resolves its row first), so
// it goes through the hash table above rather than a binary search — a
// lower_bound over a few thousand shard ids costs several times the sliced
// gain scan itself.
class ShardItemIndex {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  explicit ShardItemIndex(std::span<const ElementId> shard);

  std::size_t size() const noexcept { return items_.size(); }
  const std::vector<ElementId>& items() const noexcept { return items_; }
  ElementId item(std::size_t row) const noexcept { return items_[row]; }

  // Local row of `x`, or npos when x is not a shard member.
  std::size_t row_of(ElementId x) const noexcept {
    const std::uint32_t row = rows_.find(x);
    return row == U32LocalIdMap::kEmpty ? npos
                                        : static_cast<std::size_t>(row);
  }

  std::size_t bytes() const noexcept {
    return items_.capacity() * sizeof(ElementId) + rows_.table_bytes();
  }

 private:
  std::vector<ElementId> items_;
  U32LocalIdMap rows_;
};

// Throws std::out_of_range naming the element — shared error path for
// compacted views asked about an element outside their shard.
[[noreturn]] void throw_outside_shard(ElementId x);

}  // namespace bds::detail
