// Coverage maximization (§4.1): the ground set is a family of sets over a
// universe U; f(S) = |∪_{i∈S} set_i| (or the weighted sum). Selecting an
// element means selecting a set of the family.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// Immutable CSR-packed family of sets over a universe [0, universe_size).
// Shared read-only by every oracle clone, so the per-clone state is just the
// covered bitmap.
//
// Two storage modes behind one interface: the owning constructor packs the
// CSR into heap vectors (canonicalizing as it goes), while the borrowing
// constructor aliases externally owned arrays — in practice the sections of
// an mmap'd dataset file (data/io.h `map_set_system`), held alive by the
// `storage` handle. Every accessor reads through the same pointers either
// way, so oracles and shard views are bit-identical across both backings.
class SetSystem {
 public:
  // Builds from explicit sets. Duplicate entries within a set are
  // deduplicated at construction (they count once for coverage). Throws
  // std::out_of_range if any element is >= universe_size.
  SetSystem(std::vector<std::vector<std::uint32_t>> sets,
            std::uint32_t universe_size);

  // Zero-copy view over an already-canonical CSR (offsets ascending from 0
  // to num_entries, per-set entries sorted unique, elements in range —
  // what save_set_system writes). `offsets` has num_sets + 1 entries;
  // `storage` owns the backing bytes (mapping or holder) and is retained
  // for the SetSystem's lifetime. Throws std::invalid_argument on a null
  // array or an offsets/num_entries mismatch.
  SetSystem(const std::uint64_t* offsets, std::size_t num_sets,
            const std::uint32_t* entries, std::size_t num_entries,
            std::uint32_t universe_size, std::shared_ptr<const void> storage);

  std::size_t num_sets() const noexcept { return num_sets_; }
  std::uint32_t universe_size() const noexcept { return universe_size_; }
  // Sum of set sizes (the "total size" the paper quotes per dataset).
  std::size_t total_size() const noexcept { return num_entries_; }
  // Allocated capacity of the entry array. Regression surface: the
  // constructor reserves post-dedup, so this must equal total_size().
  std::size_t entries_capacity() const noexcept {
    return storage_ ? num_entries_ : owned_entries_.capacity();
  }
  // True when the CSR aliases external storage (an mmap'd file section).
  bool borrows_storage() const noexcept { return storage_ != nullptr; }

  std::span<const std::uint32_t> set_items(ElementId set_id) const noexcept {
    const std::uint64_t* const offsets = offsets_data();
    return std::span<const std::uint32_t>(
        entries_data() + offsets[set_id],
        static_cast<std::size_t>(offsets[set_id + 1] - offsets[set_id]));
  }

  std::size_t set_size(ElementId set_id) const noexcept {
    const std::uint64_t* const offsets = offsets_data();
    return static_cast<std::size_t>(offsets[set_id + 1] - offsets[set_id]);
  }

  // Raw CSR arrays for batched kernels (offsets has num_sets()+1 entries).
  const std::uint64_t* offsets_data() const noexcept {
    return storage_ ? ext_offsets_ : owned_offsets_.data();
  }
  const std::uint32_t* entries_data() const noexcept {
    return storage_ ? ext_entries_ : owned_entries_.data();
  }

 private:
  std::vector<std::uint64_t> owned_offsets_;    // num_sets + 1 (owning mode)
  std::vector<std::uint32_t> owned_entries_;    // concatenated set members
  std::shared_ptr<const void> storage_;         // borrow mode: keep-alive
  const std::uint64_t* ext_offsets_ = nullptr;  // borrow mode: CSR aliases
  const std::uint32_t* ext_entries_ = nullptr;
  std::size_t num_sets_ = 0;
  std::size_t num_entries_ = 0;
  std::uint32_t universe_size_;
};

// Unweighted coverage oracle. gain(i) = number of not-yet-covered universe
// elements of set i: O(|set i|) per evaluation.
class CoverageOracle final : public SubmodularOracle {
 public:
  explicit CoverageOracle(std::shared_ptr<const SetSystem> sets);

  std::size_t ground_size() const noexcept override {
    return sets_->num_sets();
  }
  double max_value() const noexcept override {
    return static_cast<double>(sets_->universe_size());
  }

  std::uint64_t covered_count() const noexcept { return covered_count_; }
  const SetSystem& set_system() const noexcept { return *sets_; }
  std::shared_ptr<const SetSystem> set_system_ptr() const noexcept {
    return sets_;
  }
  bool supports_compacted_shard_view() const noexcept override { return true; }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const override;
  std::size_t do_state_bytes() const noexcept override;

 private:
  std::shared_ptr<const SetSystem> sets_;
  std::vector<std::uint8_t> covered_;
  std::uint64_t covered_count_ = 0;
};

// Weighted coverage: each universe element has a non-negative weight;
// f(S) = total weight covered.
class WeightedCoverageOracle final : public SubmodularOracle {
 public:
  // Preconditions: weights.size() == sets->universe_size(), weights >= 0.
  WeightedCoverageOracle(std::shared_ptr<const SetSystem> sets,
                         std::vector<double> weights);

  std::size_t ground_size() const noexcept override {
    return sets_->num_sets();
  }
  double max_value() const noexcept override { return total_weight_; }
  bool supports_compacted_shard_view() const noexcept override { return true; }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const override;
  std::size_t do_state_bytes() const noexcept override;

 private:
  std::shared_ptr<const SetSystem> sets_;
  std::shared_ptr<const std::vector<double>> weights_;  // shared, immutable
  std::vector<std::uint8_t> covered_;
  double total_weight_ = 0.0;
};

}  // namespace bds
