// Coverage maximization (§4.1): the ground set is a family of sets over a
// universe U; f(S) = |∪_{i∈S} set_i| (or the weighted sum). Selecting an
// element means selecting a set of the family.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// Immutable CSR-packed family of sets over a universe [0, universe_size).
// Shared read-only by every oracle clone, so the per-clone state is just the
// covered bitmap.
class SetSystem {
 public:
  // Builds from explicit sets. Duplicate entries within a set are
  // deduplicated at construction (they count once for coverage). Throws
  // std::out_of_range if any element is >= universe_size.
  SetSystem(std::vector<std::vector<std::uint32_t>> sets,
            std::uint32_t universe_size);

  std::size_t num_sets() const noexcept { return offsets_.size() - 1; }
  std::uint32_t universe_size() const noexcept { return universe_size_; }
  // Sum of set sizes (the "total size" the paper quotes per dataset).
  std::size_t total_size() const noexcept { return entries_.size(); }
  // Allocated capacity of the entry array. Regression surface: the
  // constructor reserves post-dedup, so this must equal total_size().
  std::size_t entries_capacity() const noexcept { return entries_.capacity(); }

  std::span<const std::uint32_t> set_items(ElementId set_id) const noexcept {
    return std::span<const std::uint32_t>(
        entries_.data() + offsets_[set_id],
        offsets_[set_id + 1] - offsets_[set_id]);
  }

  std::size_t set_size(ElementId set_id) const noexcept {
    return offsets_[set_id + 1] - offsets_[set_id];
  }

  // Raw CSR arrays for batched kernels (offsets has num_sets()+1 entries).
  const std::size_t* offsets_data() const noexcept { return offsets_.data(); }
  const std::uint32_t* entries_data() const noexcept {
    return entries_.data();
  }

 private:
  std::vector<std::size_t> offsets_;        // num_sets + 1
  std::vector<std::uint32_t> entries_;      // concatenated set members
  std::uint32_t universe_size_;
};

// Unweighted coverage oracle. gain(i) = number of not-yet-covered universe
// elements of set i: O(|set i|) per evaluation.
class CoverageOracle final : public SubmodularOracle {
 public:
  explicit CoverageOracle(std::shared_ptr<const SetSystem> sets);

  std::size_t ground_size() const noexcept override {
    return sets_->num_sets();
  }
  double max_value() const noexcept override {
    return static_cast<double>(sets_->universe_size());
  }

  std::uint64_t covered_count() const noexcept { return covered_count_; }
  const SetSystem& set_system() const noexcept { return *sets_; }
  std::shared_ptr<const SetSystem> set_system_ptr() const noexcept {
    return sets_;
  }
  bool supports_compacted_shard_view() const noexcept override { return true; }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const override;
  std::size_t do_state_bytes() const noexcept override;

 private:
  std::shared_ptr<const SetSystem> sets_;
  std::vector<std::uint8_t> covered_;
  std::uint64_t covered_count_ = 0;
};

// Weighted coverage: each universe element has a non-negative weight;
// f(S) = total weight covered.
class WeightedCoverageOracle final : public SubmodularOracle {
 public:
  // Preconditions: weights.size() == sets->universe_size(), weights >= 0.
  WeightedCoverageOracle(std::shared_ptr<const SetSystem> sets,
                         std::vector<double> weights);

  std::size_t ground_size() const noexcept override {
    return sets_->num_sets();
  }
  double max_value() const noexcept override { return total_weight_; }
  bool supports_compacted_shard_view() const noexcept override { return true; }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::unique_ptr<SubmodularOracle> do_shard_view(
      std::span<const ElementId> shard) const override;
  std::size_t do_state_bytes() const noexcept override;

 private:
  std::shared_ptr<const SetSystem> sets_;
  std::shared_ptr<const std::vector<double>> weights_;  // shared, immutable
  std::vector<std::uint8_t> covered_;
  double total_weight_ = 0.0;
};

}  // namespace bds
