// Exemplar-based clustering (§4.2): given points with a squared-L2 distance
// and a phantom exemplar p0 at distance d0 from every point, maximize
//
//   f(S) = c({p0}) − c(S ∪ {p0}),   c(S) = Σ_v min_{s∈S} dist(v, s),
//
// a monotone submodular function; maximizing it minimizes clustering cost.
//
// Two oracles are provided:
//  * ExemplarOracle — exact; each evaluation touches every point: O(n·dim).
//  * SampledExemplarOracle — the paper's estimation scheme: the objective is
//    estimated on a fixed uniform sample V' (500 points per machine in §4.2),
//    scaled by n/|V'|. Distributed machines each receive an independent
//    sample; exact values for reporting are always recomputed with the exact
//    oracle.
//
// Both oracles evaluate through the SIMD kernel layer (util/kernels.h):
// distances use the norms+dot identity over PointSet's padded rows and
// cached squared norms, gains accumulate over the cost points in canonical
// kern::kCostChunk chunks merged in chunk order — which is also how the
// pool-parallel batch path splits the work, so serial and parallel results
// are bit-identical at any thread count. BDS_KERNEL=legacy restores the
// pre-kernel sequential scans for A/B comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "objectives/submodular.h"
#include "util/aligned.h"
#include "util/element.h"
#include "util/rng.h"

namespace bds {

class GainFusionGroup;

// Immutable row-major point matrix (float storage; accumulation in double).
// Rows are stored padded to kern::padded_dim(dim) floats (zero-filled) on a
// 32-byte-aligned base so SIMD kernels can stream them, and each row's
// squared L2 norm is cached for the norms+dot distance formulation.
//
// The padded matrix and the norm cache can either be owned (heap vectors,
// the generator path) or borrowed from externally owned storage — the
// sections of an mmap'd dataset file (data/io.h `map_point_set`), kept
// alive by the `storage` handle. Stored norms were computed with the lane
// kernels, which are bit-identical across ISA tiers, so a mapped PointSet
// evaluates exactly like the heap-built one it was written from.
class PointSet {
 public:
  // Preconditions: dim > 0, data.size() == n * dim (packed rows; the
  // constructor re-lays them out padded).
  PointSet(std::size_t n, std::size_t dim, std::vector<float> data);

  // Zero-copy view over an external padded matrix + norm cache (the mmap
  // path). `rows` must hold n × stride floats on a util::kSimdAlign'ed
  // base with stride == kern::padded_dim(dim) and zero-filled tails;
  // `norms` holds n doubles. Throws std::invalid_argument on a stride or
  // alignment violation.
  PointSet(std::size_t n, std::size_t dim, std::size_t stride,
           const float* rows, const double* norms,
           std::shared_ptr<const void> storage);

  std::size_t size() const noexcept { return n_; }
  std::size_t dim() const noexcept { return dim_; }
  // Floats per stored row: dim rounded up to kern::kLanes.
  std::size_t stride() const noexcept { return stride_; }
  // True when the matrix aliases external storage (an mmap'd file section).
  bool borrows_storage() const noexcept { return storage_ != nullptr; }

  std::span<const float> point(std::size_t i) const noexcept {
    return std::span<const float>(rows() + i * stride_, dim_);
  }
  // Padded row pointer (stride() floats, tail zero-filled).
  const float* row(std::size_t i) const noexcept {
    return rows() + i * stride_;
  }
  // Base of the padded matrix (row 0).
  const float* rows() const noexcept {
    return storage_ ? ext_rows_ : data_.data();
  }

  // Cached squared L2 norms per row, computed with the lane kernels (so
  // they are bit-identical across BDS_KERNEL ISA tiers).
  const double* norms() const noexcept {
    return storage_ ? ext_norms_ : norms_.data();
  }
  double norm2(std::size_t i) const noexcept { return norms()[i]; }

  // Scales every point to unit L2 norm (zero vectors are left untouched),
  // matching the paper's preprocessing. Refreshes the cached norms. On a
  // storage-borrowing PointSet this first materializes an owned copy of
  // the matrix (the mapping is read-only), so it may allocate/throw;
  // converters normalize before writing so mapped sets never need this.
  void normalize_rows();

 private:
  void recompute_norms();
  void materialize_owned();

  std::size_t n_;
  std::size_t dim_;
  std::size_t stride_;
  util::AlignedVector<float> data_;
  std::vector<double> norms_;
  std::shared_ptr<const void> storage_;  // borrow mode: keep-alive
  const float* ext_rows_ = nullptr;
  const double* ext_norms_ = nullptr;
};

// Squared Euclidean distance between two equal-length vectors, computed
// with the dispatched lane kernel (BDS_KERNEL=legacy: the pre-kernel
// sequential sum).
double squared_l2(std::span<const float> a, std::span<const float> b) noexcept;

// Exact exemplar-clustering oracle over all points of `points`.
// p0_dist is dist(v, p0) for every v — the paper fixes it to 2, an upper
// bound on the squared distance of unit vectors with non-negative dot
// products.
class ExemplarOracle final : public SubmodularOracle {
 public:
  // Preconditions: points non-null and non-empty, p0_dist > 0.
  ExemplarOracle(std::shared_ptr<const PointSet> points, double p0_dist);

  std::size_t ground_size() const noexcept override {
    return points_->size();
  }
  // f(S) <= c({p0}) = n * p0_dist for any S.
  double max_value() const noexcept override {
    return static_cast<double>(points_->size()) * p0_dist_;
  }

  // Current clustering cost c(S ∪ {p0}) = Σ_v min_dist[v].
  double clustering_cost() const noexcept;
  double p0_dist() const noexcept { return p0_dist_; }
  const std::shared_ptr<const PointSet>& points() const noexcept {
    return points_;
  }

  // Routes this oracle's gain evaluations through a cross-query fusion
  // group (objectives/gain_fusion.h) so concurrent evaluations against the
  // same PointSet share streaming passes. The group must have been built
  // over this oracle's point set. Clones inherit the attachment, so engine
  // workers participate too. Fused answers are bit-identical to unfused
  // ones; legacy mode bypasses the group. Pass nullptr to detach.
  void attach_fusion(std::shared_ptr<GainFusionGroup> group);
  const std::shared_ptr<GainFusionGroup>& fusion() const noexcept {
    return fusion_;
  }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  // One exemplar evaluation is itself an O(n·dim) scan, so the parallel
  // batch path splits the *cost-point* dimension (canonical chunks merged
  // in chunk order — bit-identical to serial), not the candidate span.
  bool do_gain_batch_parallel(std::span<const ElementId> xs,
                              std::span<double> out,
                              dist::ThreadPool& pool) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  // No compacted shard view: min_dist_ is irreducible — any shard point can
  // tighten any point's cost term, and restricting rows to "reachable"
  // points would itself cost O(n·s·dim) distance evaluations, the same as
  // the scan it would save. Workers fall back to clone; the paper's own
  // row-restriction is SampledExemplarOracle.
  std::size_t do_state_bytes() const noexcept override {
    return min_dist_.capacity() * sizeof(double);
  }

 private:
  std::shared_ptr<const PointSet> points_;
  double p0_dist_;
  std::vector<double> min_dist_;  // min over S ∪ {p0}; starts at p0_dist
  std::shared_ptr<GainFusionGroup> fusion_;  // optional; shared by clones
};

// Sampled estimate: identical semantics, but cost terms are summed over a
// fixed uniform sample of `sample_size` points and scaled by n/sample_size.
// Gains/values are unbiased estimates of the exact oracle's.
class SampledExemplarOracle final : public SubmodularOracle {
 public:
  // Preconditions as ExemplarOracle; additionally 0 < sample_size.
  // sample_size is clamped to the point count. `rng` draws the sample.
  SampledExemplarOracle(std::shared_ptr<const PointSet> points,
                        double p0_dist, std::size_t sample_size,
                        util::Rng& rng);

  std::size_t ground_size() const noexcept override {
    return points_->size();
  }
  double max_value() const noexcept override {
    return static_cast<double>(points_->size()) * p0_dist_;
  }

  std::span<const std::uint32_t> sample_ids() const noexcept {
    return *sample_;
  }

 protected:
  double do_gain(ElementId x) const override;
  double do_add(ElementId x) override;
  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override;
  bool do_gain_batch_parallel(std::span<const ElementId> xs,
                              std::span<double> out,
                              dist::ThreadPool& pool) const override;
  std::unique_ptr<SubmodularOracle> do_clone() const override;
  std::size_t do_state_bytes() const noexcept override {
    return min_dist_.capacity() * sizeof(double);
  }

 private:
  std::shared_ptr<const PointSet> points_;
  double p0_dist_;
  double scale_;  // n / |sample|
  std::shared_ptr<const std::vector<std::uint32_t>> sample_;
  std::vector<double> min_dist_;  // parallel to *sample_
};

}  // namespace bds
