#include "objectives/prob_coverage.h"

#include <algorithm>
#include <stdexcept>

#include "objectives/shard_view.h"

namespace bds {

namespace {

// Compacted view of a ProbCoverageOracle: sliced (local element,
// probability) CSR in original row order, the parent's per-element
// uncovered probabilities and (when weighted) weights projected onto the
// touched slice, and the parent's membership flags projected onto the shard
// rows. Gains and adds over shard members multiply/accumulate exactly the
// same doubles in the same order as the parent.
class ProbCoverageShardView final : public SubmodularOracle {
 public:
  ProbCoverageShardView(const ProbSetSystem& sets,
                        std::span<const double> uncovered,
                        const std::vector<double>* weights,
                        std::span<const std::uint8_t> in_set,
                        double total_weight,
                        std::span<const ElementId> shard)
      : index_(shard),
        ground_size_(sets.num_sets()),
        total_weight_(total_weight),
        weighted_(weights != nullptr) {
    std::size_t total = 0;
    for (const ElementId item : index_.items()) {
      total += sets.set_entries(item).size();
    }
    offsets_.reserve(index_.size() + 1);
    offsets_.push_back(0);
    entries_.reserve(total);
    in_set_.reserve(index_.size());
    detail::U32LocalIdMap remap(total);
    for (const ElementId item : index_.items()) {
      in_set_.push_back(in_set[item]);
      for (const ProbSetSystem::Entry& entry : sets.set_entries(item)) {
        const auto next = static_cast<std::uint32_t>(uncovered_.size());
        const std::uint32_t local = remap.find_or_insert(entry.element, next);
        if (local == next) {
          uncovered_.push_back(uncovered[entry.element]);
          if (weighted_) weights_.push_back((*weights)[entry.element]);
        }
        entries_.push_back(ProbSetSystem::Entry{local, entry.probability});
      }
      offsets_.push_back(static_cast<std::uint32_t>(entries_.size()));
    }
  }

  std::size_t ground_size() const noexcept override { return ground_size_; }
  double max_value() const noexcept override { return total_weight_; }
  bool supports_compacted_shard_view() const noexcept override {
    return true;
  }

 protected:
  double do_gain(ElementId x) const override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    if (in_set_[row]) return 0.0;
    double gain = 0.0;
    for (std::size_t e = offsets_[row]; e < offsets_[row + 1]; ++e) {
      const auto& entry = entries_[e];
      gain += weight_of(entry.element) * uncovered_[entry.element] *
              double(entry.probability);
    }
    return gain;
  }

  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override {
    const std::uint32_t* const offsets = offsets_.data();
    const ProbSetSystem::Entry* const entries = entries_.data();
    const double* const uncovered = uncovered_.data();
    const double* const w = weighted_ ? weights_.data() : nullptr;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t row = index_.row_of(xs[i]);
      if (row == detail::ShardItemIndex::npos) {
        detail::throw_outside_shard(xs[i]);
      }
      if (in_set_[row]) {
        out[i] = 0.0;
        continue;
      }
      double gain = 0.0;
      if (w == nullptr) {
        for (std::size_t e = offsets[row]; e < offsets[row + 1]; ++e) {
          gain +=
              uncovered[entries[e].element] * double(entries[e].probability);
        }
      } else {
        for (std::size_t e = offsets[row]; e < offsets[row + 1]; ++e) {
          gain += w[entries[e].element] * uncovered[entries[e].element] *
                  double(entries[e].probability);
        }
      }
      out[i] = gain;
    }
  }

  double do_add(ElementId x) override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    if (in_set_[row]) return 0.0;
    in_set_[row] = 1;
    double gain = 0.0;
    for (std::size_t e = offsets_[row]; e < offsets_[row + 1]; ++e) {
      const auto& entry = entries_[e];
      const double q = uncovered_[entry.element];
      gain += weight_of(entry.element) * q * double(entry.probability);
      uncovered_[entry.element] = q * (1.0 - double(entry.probability));
    }
    return gain;
  }

  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<ProbCoverageShardView>(*this);
  }

  std::size_t do_state_bytes() const noexcept override {
    return offsets_.capacity() * sizeof(std::uint32_t) +
           entries_.capacity() * sizeof(ProbSetSystem::Entry) +
           (uncovered_.capacity() + weights_.capacity()) * sizeof(double) +
           in_set_.capacity() * sizeof(std::uint8_t) + index_.bytes();
  }

 private:
  double weight_of(std::uint32_t local) const noexcept {
    return weighted_ ? weights_[local] : 1.0;
  }

  detail::ShardItemIndex index_;
  std::vector<std::uint32_t> offsets_;
  std::vector<ProbSetSystem::Entry> entries_;  // element = local id
  std::vector<double> uncovered_;              // per touched element
  std::vector<double> weights_;                // per touched element (opt.)
  std::vector<std::uint8_t> in_set_;           // per shard row
  std::size_t ground_size_;
  double total_weight_;
  bool weighted_;
};

}  // namespace

ProbSetSystem::ProbSetSystem(std::vector<std::vector<Entry>> sets,
                             std::uint32_t universe_size)
    : universe_size_(universe_size) {
  offsets_.reserve(sets.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& s : sets) total += s.size();
  entries_.reserve(total);
  std::vector<std::uint32_t> scratch;
  for (const auto& s : sets) {
    for (const Entry& e : s) {
      if (e.element >= universe_size) {
        throw std::out_of_range("ProbSetSystem: element beyond universe");
      }
      if (e.probability < 0.0f || e.probability > 1.0f) {
        throw std::invalid_argument(
            "ProbSetSystem: probability outside [0, 1]");
      }
      entries_.push_back(e);
    }
    // Reject duplicate elements within one set: the incremental gain()
    // formula assumes each element appears at most once per item.
    scratch.clear();
    for (const Entry& e : s) scratch.push_back(e.element);
    std::sort(scratch.begin(), scratch.end());
    if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
      throw std::invalid_argument(
          "ProbSetSystem: duplicate element within a set");
    }
    offsets_.push_back(entries_.size());
  }
}

ProbCoverageOracle::ProbCoverageOracle(
    std::shared_ptr<const ProbSetSystem> sets)
    : sets_(std::move(sets)),
      uncovered_prob_(sets_->universe_size(), 1.0),
      in_set_(sets_->num_sets(), 0),
      total_weight_(static_cast<double>(sets_->universe_size())) {}

ProbCoverageOracle::ProbCoverageOracle(
    std::shared_ptr<const ProbSetSystem> sets, std::vector<double> weights)
    : sets_(std::move(sets)),
      uncovered_prob_(sets_->universe_size(), 1.0),
      in_set_(sets_->num_sets(), 0) {
  if (weights.size() != sets_->universe_size()) {
    throw std::invalid_argument(
        "ProbCoverageOracle: one weight per universe element required");
  }
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "ProbCoverageOracle: weights must be non-negative");
    }
    total_weight_ += w;
  }
  weights_ = std::make_shared<const std::vector<double>>(std::move(weights));
}

double ProbCoverageOracle::do_gain(ElementId x) const {
  if (in_set_[x]) return 0.0;  // set semantics: members re-add for free
  // Adding x multiplies each touched element's uncovered probability by
  // (1 − p): the expected newly covered weight is w_u · q_u · p.
  double gain = 0.0;
  for (const auto& entry : sets_->set_entries(x)) {
    gain += weight_of(entry.element) * uncovered_prob_[entry.element] *
            double(entry.probability);
  }
  return gain;
}

void ProbCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                       std::span<double> out) const {
  const std::size_t* const offsets = sets_->offsets_data();
  const ProbSetSystem::Entry* const entries = sets_->entries_data();
  const double* const uncovered = uncovered_prob_.data();
  const double* const w = weights_ ? weights_->data() : nullptr;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const ElementId x = xs[i];
    if (in_set_[x]) {
      out[i] = 0.0;
      continue;
    }
    const std::size_t begin = offsets[x];
    const std::size_t end = offsets[x + 1];
    double gain = 0.0;
    if (w == nullptr) {
      for (std::size_t e = begin; e < end; ++e) {
        gain += uncovered[entries[e].element] * double(entries[e].probability);
      }
    } else {
      for (std::size_t e = begin; e < end; ++e) {
        gain += w[entries[e].element] * uncovered[entries[e].element] *
                double(entries[e].probability);
      }
    }
    out[i] = gain;
  }
}

double ProbCoverageOracle::do_add(ElementId x) {
  if (in_set_[x]) return 0.0;
  in_set_[x] = 1;
  double gain = 0.0;
  for (const auto& entry : sets_->set_entries(x)) {
    const double q = uncovered_prob_[entry.element];
    gain += weight_of(entry.element) * q * double(entry.probability);
    uncovered_prob_[entry.element] = q * (1.0 - double(entry.probability));
  }
  return gain;
}

std::unique_ptr<SubmodularOracle> ProbCoverageOracle::do_clone() const {
  return std::make_unique<ProbCoverageOracle>(*this);
}

std::unique_ptr<SubmodularOracle> ProbCoverageOracle::do_shard_view(
    std::span<const ElementId> shard) const {
  return std::make_unique<ProbCoverageShardView>(
      *sets_, uncovered_prob_, weights_ ? weights_.get() : nullptr, in_set_,
      total_weight_, shard);
}

std::size_t ProbCoverageOracle::do_state_bytes() const noexcept {
  return uncovered_prob_.capacity() * sizeof(double) +
         in_set_.capacity() * sizeof(std::uint8_t);
}

}  // namespace bds
