#include "objectives/prob_coverage.h"

#include <algorithm>
#include <stdexcept>

#include "objectives/shard_view.h"

namespace bds {

namespace {

// Batched probabilistic-coverage gain over a CSR row: sums
// w_u · q_u · p in original entry order for kProbTile candidates at once.
// Each candidate keeps its own accumulator (so every per-candidate sum is
// bit-identical to the scalar gain() loop), but interleaving kProbTile
// independent FP add chains hides the loop-carried add latency that made
// the naive one-candidate-at-a-time batch slower than scalar gain calls.
inline constexpr std::size_t kProbTile = 4;

// Rows() maps a candidate index to its CSR row (validating shard
// membership); Skip(row) tells whether that row is already selected (gain
// 0). Offset is u32 (shard views) or u64 (full oracles).
template <typename Offset, typename Rows, typename Skip>
void prob_gain_batch_csr(std::span<const ElementId> xs, std::span<double> out,
                         const Offset* offsets,
                         const ProbSetSystem::Entry* entries,
                         const double* uncovered, const double* w, Rows rows,
                         Skip skip) {
  std::size_t i = 0;
  for (; i + kProbTile <= xs.size(); i += kProbTile) {
    std::size_t cursor[kProbTile];
    std::size_t end[kProbTile];
    double acc[kProbTile];
    std::size_t shortest = ~std::size_t{0};
    for (std::size_t t = 0; t < kProbTile; ++t) {
      acc[t] = 0.0;
      const std::size_t row = rows(i + t);
      if (skip(row)) {
        cursor[t] = 0;
        end[t] = 0;
      } else {
        cursor[t] = static_cast<std::size_t>(offsets[row]);
        end[t] = static_cast<std::size_t>(offsets[row + 1]);
      }
      shortest = std::min(shortest, end[t] - cursor[t]);
    }
    // Lockstep over the shared prefix: four independent add chains.
    if (w == nullptr) {
      for (std::size_t step = 0; step < shortest; ++step) {
        for (std::size_t t = 0; t < kProbTile; ++t) {
          const ProbSetSystem::Entry e = entries[cursor[t] + step];
          acc[t] += uncovered[e.element] * double(e.probability);
        }
      }
      for (std::size_t t = 0; t < kProbTile; ++t) {
        for (std::size_t e = cursor[t] + shortest; e < end[t]; ++e) {
          acc[t] += uncovered[entries[e].element] *
                    double(entries[e].probability);
        }
      }
    } else {
      for (std::size_t step = 0; step < shortest; ++step) {
        for (std::size_t t = 0; t < kProbTile; ++t) {
          const ProbSetSystem::Entry e = entries[cursor[t] + step];
          acc[t] += w[e.element] * uncovered[e.element] *
                    double(e.probability);
        }
      }
      for (std::size_t t = 0; t < kProbTile; ++t) {
        for (std::size_t e = cursor[t] + shortest; e < end[t]; ++e) {
          acc[t] += w[entries[e].element] * uncovered[entries[e].element] *
                    double(entries[e].probability);
        }
      }
    }
    for (std::size_t t = 0; t < kProbTile; ++t) out[i + t] = acc[t];
  }
  // Remainder: plain per-candidate scan (identical accumulation order).
  for (; i < xs.size(); ++i) {
    const std::size_t row = rows(i);
    if (skip(row)) {
      out[i] = 0.0;
      continue;
    }
    double gain = 0.0;
    if (w == nullptr) {
      for (auto e = static_cast<std::size_t>(offsets[row]);
           e < static_cast<std::size_t>(offsets[row + 1]); ++e) {
        gain += uncovered[entries[e].element] * double(entries[e].probability);
      }
    } else {
      for (auto e = static_cast<std::size_t>(offsets[row]);
           e < static_cast<std::size_t>(offsets[row + 1]); ++e) {
        gain += w[entries[e].element] * uncovered[entries[e].element] *
                double(entries[e].probability);
      }
    }
    out[i] = gain;
  }
}

// Compacted view of a ProbCoverageOracle: sliced (local element,
// probability) CSR in original row order, the parent's per-element
// uncovered probabilities and (when weighted) weights projected onto the
// touched slice, and the parent's membership flags projected onto the shard
// rows. Gains and adds over shard members multiply/accumulate exactly the
// same doubles in the same order as the parent.
class ProbCoverageShardView final : public SubmodularOracle {
 public:
  ProbCoverageShardView(const ProbSetSystem& sets,
                        std::span<const double> uncovered,
                        const std::vector<double>* weights,
                        std::span<const std::uint8_t> in_set,
                        double total_weight,
                        std::span<const ElementId> shard)
      : index_(shard),
        ground_size_(sets.num_sets()),
        total_weight_(total_weight),
        weighted_(weights != nullptr) {
    std::size_t total = 0;
    for (const ElementId item : index_.items()) {
      total += sets.set_entries(item).size();
    }
    offsets_.reserve(index_.size() + 1);
    offsets_.push_back(0);
    entries_.reserve(total);
    in_set_.reserve(index_.size());
    detail::U32LocalIdMap remap(total);
    for (const ElementId item : index_.items()) {
      in_set_.push_back(in_set[item]);
      for (const ProbSetSystem::Entry& entry : sets.set_entries(item)) {
        const auto next = static_cast<std::uint32_t>(uncovered_.size());
        const std::uint32_t local = remap.find_or_insert(entry.element, next);
        if (local == next) {
          uncovered_.push_back(uncovered[entry.element]);
          if (weighted_) weights_.push_back((*weights)[entry.element]);
        }
        entries_.push_back(ProbSetSystem::Entry{local, entry.probability});
      }
      offsets_.push_back(static_cast<std::uint32_t>(entries_.size()));
    }
  }

  std::size_t ground_size() const noexcept override { return ground_size_; }
  double max_value() const noexcept override { return total_weight_; }
  bool supports_compacted_shard_view() const noexcept override {
    return true;
  }

 protected:
  double do_gain(ElementId x) const override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    if (in_set_[row]) return 0.0;
    double gain = 0.0;
    for (std::size_t e = offsets_[row]; e < offsets_[row + 1]; ++e) {
      const auto& entry = entries_[e];
      gain += weight_of(entry.element) * uncovered_[entry.element] *
              double(entry.probability);
    }
    return gain;
  }

  void do_gain_batch(std::span<const ElementId> xs,
                     std::span<double> out) const override {
    prob_gain_batch_csr(
        xs, out, offsets_.data(), entries_.data(), uncovered_.data(),
        weighted_ ? weights_.data() : nullptr,
        [&](std::size_t i) {
          const std::size_t row = index_.row_of(xs[i]);
          if (row == detail::ShardItemIndex::npos) {
            detail::throw_outside_shard(xs[i]);
          }
          return row;
        },
        [&](std::size_t row) { return in_set_[row] != 0; });
  }

  double do_add(ElementId x) override {
    const std::size_t row = index_.row_of(x);
    if (row == detail::ShardItemIndex::npos) detail::throw_outside_shard(x);
    if (in_set_[row]) return 0.0;
    in_set_[row] = 1;
    double gain = 0.0;
    for (std::size_t e = offsets_[row]; e < offsets_[row + 1]; ++e) {
      const auto& entry = entries_[e];
      const double q = uncovered_[entry.element];
      gain += weight_of(entry.element) * q * double(entry.probability);
      uncovered_[entry.element] = q * (1.0 - double(entry.probability));
    }
    return gain;
  }

  std::unique_ptr<SubmodularOracle> do_clone() const override {
    return std::make_unique<ProbCoverageShardView>(*this);
  }

  std::size_t do_state_bytes() const noexcept override {
    return offsets_.capacity() * sizeof(std::uint32_t) +
           entries_.capacity() * sizeof(ProbSetSystem::Entry) +
           (uncovered_.capacity() + weights_.capacity()) * sizeof(double) +
           in_set_.capacity() * sizeof(std::uint8_t) + index_.bytes();
  }

 private:
  double weight_of(std::uint32_t local) const noexcept {
    return weighted_ ? weights_[local] : 1.0;
  }

  detail::ShardItemIndex index_;
  std::vector<std::uint32_t> offsets_;
  std::vector<ProbSetSystem::Entry> entries_;  // element = local id
  std::vector<double> uncovered_;              // per touched element
  std::vector<double> weights_;                // per touched element (opt.)
  std::vector<std::uint8_t> in_set_;           // per shard row
  std::size_t ground_size_;
  double total_weight_;
  bool weighted_;
};

}  // namespace

ProbSetSystem::ProbSetSystem(std::vector<std::vector<Entry>> sets,
                             std::uint32_t universe_size)
    : universe_size_(universe_size) {
  owned_offsets_.reserve(sets.size() + 1);
  owned_offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& s : sets) total += s.size();
  owned_entries_.reserve(total);
  std::vector<std::uint32_t> scratch;
  for (const auto& s : sets) {
    for (const Entry& e : s) {
      if (e.element >= universe_size) {
        throw std::out_of_range("ProbSetSystem: element beyond universe");
      }
      if (e.probability < 0.0f || e.probability > 1.0f) {
        throw std::invalid_argument(
            "ProbSetSystem: probability outside [0, 1]");
      }
      owned_entries_.push_back(e);
    }
    // Reject duplicate elements within one set: the incremental gain()
    // formula assumes each element appears at most once per item.
    scratch.clear();
    for (const Entry& e : s) scratch.push_back(e.element);
    std::sort(scratch.begin(), scratch.end());
    if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
      throw std::invalid_argument(
          "ProbSetSystem: duplicate element within a set");
    }
    owned_offsets_.push_back(owned_entries_.size());
  }
  num_sets_ = sets.size();
  num_entries_ = owned_entries_.size();
}

ProbSetSystem::ProbSetSystem(const std::uint64_t* offsets,
                             std::size_t num_sets, const Entry* entries,
                             std::size_t num_entries,
                             std::uint32_t universe_size,
                             std::shared_ptr<const void> storage)
    : storage_(std::move(storage)),
      ext_offsets_(offsets),
      ext_entries_(entries),
      num_sets_(num_sets),
      num_entries_(num_entries),
      universe_size_(universe_size) {
  if (storage_ == nullptr || offsets == nullptr ||
      (entries == nullptr && num_entries != 0)) {
    throw std::invalid_argument("ProbSetSystem: null external CSR storage");
  }
  if (offsets[0] != 0 || offsets[num_sets] != num_entries) {
    throw std::invalid_argument("ProbSetSystem: external CSR offsets corrupt");
  }
}

ProbCoverageOracle::ProbCoverageOracle(
    std::shared_ptr<const ProbSetSystem> sets)
    : sets_(std::move(sets)),
      uncovered_prob_(sets_->universe_size(), 1.0),
      in_set_(sets_->num_sets(), 0),
      total_weight_(static_cast<double>(sets_->universe_size())) {}

ProbCoverageOracle::ProbCoverageOracle(
    std::shared_ptr<const ProbSetSystem> sets, std::vector<double> weights)
    : sets_(std::move(sets)),
      uncovered_prob_(sets_->universe_size(), 1.0),
      in_set_(sets_->num_sets(), 0) {
  if (weights.size() != sets_->universe_size()) {
    throw std::invalid_argument(
        "ProbCoverageOracle: one weight per universe element required");
  }
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "ProbCoverageOracle: weights must be non-negative");
    }
    total_weight_ += w;
  }
  weights_ = std::make_shared<const std::vector<double>>(std::move(weights));
}

double ProbCoverageOracle::do_gain(ElementId x) const {
  if (in_set_[x]) return 0.0;  // set semantics: members re-add for free
  // Adding x multiplies each touched element's uncovered probability by
  // (1 − p): the expected newly covered weight is w_u · q_u · p.
  double gain = 0.0;
  for (const auto& entry : sets_->set_entries(x)) {
    gain += weight_of(entry.element) * uncovered_prob_[entry.element] *
            double(entry.probability);
  }
  return gain;
}

void ProbCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                       std::span<double> out) const {
  prob_gain_batch_csr(
      xs, out, sets_->offsets_data(), sets_->entries_data(),
      uncovered_prob_.data(), weights_ ? weights_->data() : nullptr,
      [&](std::size_t i) { return static_cast<std::size_t>(xs[i]); },
      [&](std::size_t row) { return in_set_[row] != 0; });
}

double ProbCoverageOracle::do_add(ElementId x) {
  if (in_set_[x]) return 0.0;
  in_set_[x] = 1;
  double gain = 0.0;
  for (const auto& entry : sets_->set_entries(x)) {
    const double q = uncovered_prob_[entry.element];
    gain += weight_of(entry.element) * q * double(entry.probability);
    uncovered_prob_[entry.element] = q * (1.0 - double(entry.probability));
  }
  return gain;
}

std::unique_ptr<SubmodularOracle> ProbCoverageOracle::do_clone() const {
  return std::make_unique<ProbCoverageOracle>(*this);
}

std::unique_ptr<SubmodularOracle> ProbCoverageOracle::do_shard_view(
    std::span<const ElementId> shard) const {
  return std::make_unique<ProbCoverageShardView>(
      *sets_, uncovered_prob_, weights_ ? weights_.get() : nullptr, in_set_,
      total_weight_, shard);
}

std::size_t ProbCoverageOracle::do_state_bytes() const noexcept {
  return uncovered_prob_.capacity() * sizeof(double) +
         in_set_.capacity() * sizeof(std::uint8_t);
}

}  // namespace bds
