#include "objectives/prob_coverage.h"

#include <algorithm>
#include <stdexcept>

namespace bds {

ProbSetSystem::ProbSetSystem(std::vector<std::vector<Entry>> sets,
                             std::uint32_t universe_size)
    : universe_size_(universe_size) {
  offsets_.reserve(sets.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& s : sets) total += s.size();
  entries_.reserve(total);
  std::vector<std::uint32_t> scratch;
  for (const auto& s : sets) {
    for (const Entry& e : s) {
      if (e.element >= universe_size) {
        throw std::out_of_range("ProbSetSystem: element beyond universe");
      }
      if (e.probability < 0.0f || e.probability > 1.0f) {
        throw std::invalid_argument(
            "ProbSetSystem: probability outside [0, 1]");
      }
      entries_.push_back(e);
    }
    // Reject duplicate elements within one set: the incremental gain()
    // formula assumes each element appears at most once per item.
    scratch.clear();
    for (const Entry& e : s) scratch.push_back(e.element);
    std::sort(scratch.begin(), scratch.end());
    if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
      throw std::invalid_argument(
          "ProbSetSystem: duplicate element within a set");
    }
    offsets_.push_back(entries_.size());
  }
}

ProbCoverageOracle::ProbCoverageOracle(
    std::shared_ptr<const ProbSetSystem> sets)
    : sets_(std::move(sets)),
      uncovered_prob_(sets_->universe_size(), 1.0),
      in_set_(sets_->num_sets(), 0),
      total_weight_(static_cast<double>(sets_->universe_size())) {}

ProbCoverageOracle::ProbCoverageOracle(
    std::shared_ptr<const ProbSetSystem> sets, std::vector<double> weights)
    : sets_(std::move(sets)),
      uncovered_prob_(sets_->universe_size(), 1.0),
      in_set_(sets_->num_sets(), 0) {
  if (weights.size() != sets_->universe_size()) {
    throw std::invalid_argument(
        "ProbCoverageOracle: one weight per universe element required");
  }
  for (const double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "ProbCoverageOracle: weights must be non-negative");
    }
    total_weight_ += w;
  }
  weights_ = std::make_shared<const std::vector<double>>(std::move(weights));
}

double ProbCoverageOracle::do_gain(ElementId x) const {
  if (in_set_[x]) return 0.0;  // set semantics: members re-add for free
  // Adding x multiplies each touched element's uncovered probability by
  // (1 − p): the expected newly covered weight is w_u · q_u · p.
  double gain = 0.0;
  for (const auto& entry : sets_->set_entries(x)) {
    gain += weight_of(entry.element) * uncovered_prob_[entry.element] *
            double(entry.probability);
  }
  return gain;
}

void ProbCoverageOracle::do_gain_batch(std::span<const ElementId> xs,
                                       std::span<double> out) const {
  const std::size_t* const offsets = sets_->offsets_data();
  const ProbSetSystem::Entry* const entries = sets_->entries_data();
  const double* const uncovered = uncovered_prob_.data();
  const double* const w = weights_ ? weights_->data() : nullptr;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const ElementId x = xs[i];
    if (in_set_[x]) {
      out[i] = 0.0;
      continue;
    }
    const std::size_t begin = offsets[x];
    const std::size_t end = offsets[x + 1];
    double gain = 0.0;
    if (w == nullptr) {
      for (std::size_t e = begin; e < end; ++e) {
        gain += uncovered[entries[e].element] * double(entries[e].probability);
      }
    } else {
      for (std::size_t e = begin; e < end; ++e) {
        gain += w[entries[e].element] * uncovered[entries[e].element] *
                double(entries[e].probability);
      }
    }
    out[i] = gain;
  }
}

double ProbCoverageOracle::do_add(ElementId x) {
  if (in_set_[x]) return 0.0;
  in_set_[x] = 1;
  double gain = 0.0;
  for (const auto& entry : sets_->set_entries(x)) {
    const double q = uncovered_prob_[entry.element];
    gain += weight_of(entry.element) * q * double(entry.probability);
    uncovered_prob_[entry.element] = q * (1.0 - double(entry.probability));
  }
  return gain;
}

std::unique_ptr<SubmodularOracle> ProbCoverageOracle::do_clone() const {
  return std::make_unique<ProbCoverageOracle>(*this);
}

}  // namespace bds
