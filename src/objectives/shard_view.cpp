#include "objectives/shard_view.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bds::detail {

namespace {

std::size_t table_capacity_for(std::size_t expected_keys) {
  // Keep the load factor under ~0.7; minimum 16 slots.
  std::size_t cap = 16;
  while (cap * 7 < expected_keys * 10) cap <<= 1;
  return cap;
}

// Fibonacci hashing spreads consecutive universe ids across the table.
std::size_t hash_u32(std::uint32_t key) noexcept {
  return static_cast<std::size_t>(key * 2654435769u);
}

}  // namespace

U32LocalIdMap::U32LocalIdMap(std::size_t expected_keys) {
  const std::size_t cap = table_capacity_for(expected_keys);
  keys_.assign(cap, kEmpty);
  values_.assign(cap, 0);
  mask_ = cap - 1;
}

void U32LocalIdMap::grow() {
  std::vector<std::uint32_t> old_keys = std::move(keys_);
  std::vector<std::uint32_t> old_values = std::move(values_);
  const std::size_t cap = (mask_ + 1) * 2;
  keys_.assign(cap, kEmpty);
  values_.assign(cap, 0);
  mask_ = cap - 1;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmpty) continue;
    std::size_t slot = hash_u32(old_keys[i]) & mask_;
    while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    values_[slot] = old_values[i];
  }
}

std::uint32_t U32LocalIdMap::find_or_insert(std::uint32_t key,
                                            std::uint32_t next_value) {
  std::size_t slot = hash_u32(key) & mask_;
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == key) return values_[slot];
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  values_[slot] = next_value;
  ++size_;
  if (size_ * 10 > (mask_ + 1) * 7) grow();
  return next_value;
}

std::uint32_t U32LocalIdMap::find(std::uint32_t key) const noexcept {
  std::size_t slot = hash_u32(key) & mask_;
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == key) return values_[slot];
    slot = (slot + 1) & mask_;
  }
  return kEmpty;
}

ShardItemIndex::ShardItemIndex(std::span<const ElementId> shard)
    : items_(shard.begin(), shard.end()) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  items_.shrink_to_fit();
  rows_ = U32LocalIdMap(items_.size());
  for (std::size_t row = 0; row < items_.size(); ++row) {
    rows_.find_or_insert(items_[row], static_cast<std::uint32_t>(row));
  }
}

void throw_outside_shard(ElementId x) {
  throw std::out_of_range("shard view: element " + std::to_string(x) +
                          " is outside the view's shard");
}

}  // namespace bds::detail
