#include "core/hardness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace bds {

std::vector<ElementId> HardnessInstance::all_items() const {
  std::vector<ElementId> items;
  items.reserve(family_a.size() + family_b.size() + family_c.size());
  items.insert(items.end(), family_a.begin(), family_a.end());
  items.insert(items.end(), family_b.begin(), family_b.end());
  items.insert(items.end(), family_c.begin(), family_c.end());
  return items;
}

std::vector<ElementId> HardnessInstance::optimum() const {
  std::vector<ElementId> items;
  items.reserve(family_a.size() + family_b.size());
  items.insert(items.end(), family_a.begin(), family_a.end());
  items.insert(items.end(), family_b.begin(), family_b.end());
  return items;
}

HardnessInstance make_hardness_instance(const HardnessConfig& config) {
  if (config.k < 2 || config.k % 2 != 0) {
    throw std::invalid_argument("hardness: k must be even and >= 2");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 0.5)) {
    throw std::invalid_argument("hardness: epsilon must be in (0, 1/2)");
  }
  if (config.total_items <= config.k) {
    throw std::invalid_argument("hardness: need total_items > k");
  }

  const std::uint32_t L = config.universe;
  const std::size_t half_k = config.k / 2;

  // Split U into the 𝔸-region [0, La) and the 𝔹-region [La, L).
  const auto La = static_cast<std::uint32_t>(
      std::llround((1.0 - 2.0 * config.epsilon) * double(L)));
  const std::uint32_t Lb = L - La;
  if (La / half_k == 0 || Lb / half_k == 0) {
    throw std::invalid_argument(
        "hardness: universe too small for k and epsilon");
  }

  std::vector<std::vector<std::uint32_t>> sets;
  sets.reserve(config.total_items);
  HardnessInstance instance;
  instance.config = config;

  // 𝔸: k/2 equal chunks of the (1−2ε)-region (leftover elements join the
  // last chunk so 𝔸 covers the whole region).
  for (std::size_t i = 0; i < half_k; ++i) {
    const std::uint32_t chunk = La / half_k;
    const std::uint32_t lo = static_cast<std::uint32_t>(i) * chunk;
    const std::uint32_t hi =
        (i + 1 == half_k) ? La : lo + chunk;
    std::vector<std::uint32_t> s;
    s.reserve(hi - lo);
    for (std::uint32_t e = lo; e < hi; ++e) s.push_back(e);
    instance.family_a.push_back(static_cast<ElementId>(sets.size()));
    sets.push_back(std::move(s));
  }

  // 𝔹: k/2 equal chunks of the 2ε-region.
  const std::uint32_t b_chunk = Lb / half_k;
  for (std::size_t i = 0; i < half_k; ++i) {
    const std::uint32_t lo = La + static_cast<std::uint32_t>(i) * b_chunk;
    const std::uint32_t hi = (i + 1 == half_k) ? L : lo + b_chunk;
    std::vector<std::uint32_t> s;
    s.reserve(hi - lo);
    for (std::uint32_t e = lo; e < hi; ++e) s.push_back(e);
    instance.family_b.push_back(static_cast<ElementId>(sets.size()));
    sets.push_back(std::move(s));
  }

  // ℂ: n−k uniform random subsets of U, each of the 𝔹-set size.
  util::Rng rng(config.seed);
  const std::size_t c_count = config.total_items - config.k;
  for (std::size_t i = 0; i < c_count; ++i) {
    const auto picks = rng.sample_without_replacement(L, b_chunk);
    std::vector<std::uint32_t> s(picks.begin(), picks.end());
    instance.family_c.push_back(static_cast<ElementId>(sets.size()));
    sets.push_back(std::move(s));
  }

  // Shuffle set ids so family membership is not recoverable from the id —
  // otherwise deterministic tie-breaking (lowest id wins) would leak which
  // equal-sized sets are the planted 𝔹-sets and defeat the
  // indistinguishability the lower-bound argument rests on.
  std::vector<std::size_t> position(sets.size());
  for (std::size_t i = 0; i < position.size(); ++i) position[i] = i;
  rng.shuffle(std::span<std::size_t>(position));
  std::vector<std::vector<std::uint32_t>> shuffled(sets.size());
  std::vector<ElementId> new_id(sets.size());
  for (std::size_t new_pos = 0; new_pos < sets.size(); ++new_pos) {
    shuffled[new_pos] = std::move(sets[position[new_pos]]);
    new_id[position[new_pos]] = static_cast<ElementId>(new_pos);
  }
  for (auto* family :
       {&instance.family_a, &instance.family_b, &instance.family_c}) {
    for (ElementId& id : *family) id = new_id[id];
  }

  instance.sets = std::make_shared<const SetSystem>(std::move(shuffled), L);
  return instance;
}

HardnessOutcome evaluate_hardness_solution(
    const HardnessInstance& instance, std::span<const ElementId> solution) {
  HardnessOutcome outcome;
  const std::unordered_set<ElementId> a(instance.family_a.begin(),
                                        instance.family_a.end());
  const std::unordered_set<ElementId> b(instance.family_b.begin(),
                                        instance.family_b.end());
  for (const ElementId x : solution) {
    if (a.count(x) != 0) {
      ++outcome.a_selected;
    } else if (b.count(x) != 0) {
      ++outcome.b_selected;
    } else {
      ++outcome.c_selected;
    }
  }

  const CoverageOracle proto(instance.sets);
  outcome.value = evaluate_set(proto, solution);
  outcome.optimum_value =
      evaluate_set(proto, instance.optimum());  // == universe size
  outcome.ratio =
      outcome.optimum_value > 0 ? outcome.value / outcome.optimum_value : 0.0;
  return outcome;
}

}  // namespace bds
