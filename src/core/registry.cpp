#include "core/registry.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/adaptive.h"
#include "core/baselines.h"
#include "core/bicriteria.h"
#include "core/greedy.h"
#include "core/streaming.h"
#include "util/rng.h"

namespace bds {

namespace {

DistributedResult run_bicriteria_mode(BicriteriaMode mode,
                                      const SubmodularOracle& proto,
                                      std::span<const ElementId> ground,
                                      const AlgorithmParams& params,
                                      const RuntimeOptions& runtime) {
  BicriteriaConfig cfg;
  cfg.mode = mode;
  cfg.k = params.k;
  cfg.output_items = params.output_items;
  cfg.rounds = std::max<std::size_t>(1, params.rounds);
  cfg.epsilon = params.epsilon;
  cfg.machines = params.machines;
  cfg.runtime = runtime;
  return bicriteria_greedy(proto, ground, cfg);
}

DistributedResult run_one_round(
    DistributedResult (*fn)(const SubmodularOracle&,
                            std::span<const ElementId>,
                            const OneRoundConfig&),
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    const AlgorithmParams& params, const RuntimeOptions& runtime) {
  OneRoundConfig cfg;
  cfg.k = params.k;
  cfg.machines = params.machines;
  cfg.runtime = runtime;
  return fn(proto, ground, cfg);
}

std::vector<AlgorithmSpec> build_registry() {
  std::vector<AlgorithmSpec> specs;

  specs.push_back(
      {"bicriteria", "practical BicriteriaGreedy (§4 setup)", true,
       [](const auto& p, auto g, const auto& a, const auto& rt) {
         return run_bicriteria_mode(BicriteriaMode::kPractical, p, g, a, rt);
       }});
  specs.push_back(
      {"theory", "BicriteriaGreedy, Algorithm 1 budgets (Thm 2.2)", true,
       [](const auto& p, auto g, const auto& a, const auto& rt) {
         return run_bicriteria_mode(BicriteriaMode::kTheory, p, g, a, rt);
       }});
  specs.push_back(
      {"multiplicity", "BicriteriaGreedy with multiplicity C (Thm 2.3)",
       true, [](const auto& p, auto g, const auto& a, const auto& rt) {
         return run_bicriteria_mode(BicriteriaMode::kMultiplicity, p, g, a,
                                    rt);
       }});
  specs.push_back(
      {"hybrid", "HybridAlg (Thm 2.4)", true,
       [](const auto& p, auto g, const auto& a, const auto& rt) {
         return run_bicriteria_mode(BicriteriaMode::kHybrid, p, g, a, rt);
       }});
  specs.push_back({"greedi", "GreeDi [23], deterministic partition", true,
                   [](const auto& p, auto g, const auto& a, const auto& rt) {
                     return run_one_round(&greedi, p, g, a, rt);
                   }});
  specs.push_back({"randgreedi", "RandGreeDi [5], random partition", true,
                   [](const auto& p, auto g, const auto& a, const auto& rt) {
                     return run_one_round(&rand_greedi, p, g, a, rt);
                   }});
  specs.push_back({"pseudo", "PseudoGreedy [21], 4k core-sets", true,
                   [](const auto& p, auto g, const auto& a, const auto& rt) {
                     OneRoundConfig cfg;
                     cfg.k = a.k;
                     cfg.machines = a.machines;
                     cfg.runtime = rt;
                     return pseudo_greedy(p, g, cfg);
                   }});
  specs.push_back({"parallel", "ParallelAlg [6], 1/eps rounds", true,
                   [](const auto& p, auto g, const auto& a, const auto& rt) {
                     ParallelAlgConfig cfg;
                     cfg.k = a.k;
                     cfg.epsilon = a.epsilon;
                     cfg.machines = a.machines;
                     cfg.runtime = rt;
                     return parallel_alg(p, g, cfg);
                   }});
  specs.push_back({"naive", "NaiveDistributedGreedy, ln(1/eps) rounds", true,
                   [](const auto& p, auto g, const auto& a, const auto& rt) {
                     NaiveDistributedConfig cfg;
                     cfg.k = a.k;
                     cfg.epsilon = a.epsilon;
                     cfg.machines = a.machines;
                     cfg.runtime = rt;
                     return naive_distributed_greedy(p, g, cfg);
                   }});
  specs.push_back({"scaling", "GreedyScaling [18], threshold rounds", true,
                   [](const auto& p, auto g, const auto& a, const auto& rt) {
                     GreedyScalingConfig cfg;
                     cfg.k = a.k;
                     cfg.epsilon = std::clamp(a.epsilon, 0.05, 0.9);
                     cfg.machines = a.machines;
                     cfg.runtime = rt;
                     return greedy_scaling(p, g, cfg);
                   }});
  specs.push_back(
      {"adaptive", "adaptive rounds with UB stopping certificate", true,
       [](const auto& p, auto g, const auto& a, const auto& rt) {
         AdaptiveConfig cfg;
         cfg.k = a.k;
         cfg.target_ratio = std::clamp(1.0 - a.epsilon, 0.01, 0.99);
         cfg.max_rounds = std::max<std::size_t>(1, a.rounds > 1 ? a.rounds : 8);
         cfg.machines = a.machines;
         cfg.runtime = rt;
         return adaptive_bicriteria(p, g, cfg).result;
       }});
  specs.push_back(
      {"sieve", "SieveStreaming [4], one pass", false,
       [](const auto& p, auto g, const auto& a, const auto&) {
         SieveStreamingConfig cfg;
         cfg.k = a.k;
         cfg.epsilon = std::clamp(a.epsilon, 0.01, 0.9);
         const auto sieve = sieve_streaming(p, g, cfg);
         DistributedResult result;
         result.solution = sieve.solution;
         result.value = sieve.value;
         return result;
       }});
  specs.push_back({"central", "centralized lazy greedy, k items", false,
                   [](const auto& p, auto g, const auto& a, const auto&) {
                     return centralized_greedy(p, g, a.k);
                   }});
  specs.push_back(
      {"central-bicriteria", "centralized greedy, k*ln(1/eps) items", false,
       [](const auto& p, auto g, const auto& a, const auto&) {
         return centralized_bicriteria(p, g, a.k,
                                       std::clamp(a.epsilon, 0.001, 0.99));
       }});
  specs.push_back(
      {"random", "uniform random k-subset baseline", false,
       [](const auto& p, auto g, const auto& a, const auto& rt) {
         auto oracle = p.clone();
         util::Rng rng(rt.seed);
         const auto picks = random_subset(*oracle, g, a.k, rng);
         DistributedResult result;
         result.solution = picks.picks;
         result.value = oracle->value();
         return result;
       }});
  return specs;
}

template <typename Spec>
[[noreturn]] void throw_unknown(const char* kind, std::string_view name,
                                const std::vector<Spec>& registry) {
  std::ostringstream message;
  message << "unknown " << kind << " '" << name << "'; known:";
  for (const auto& spec : registry) message << " " << spec.name;
  throw std::invalid_argument(message.str());
}

}  // namespace

const std::vector<AlgorithmSpec>& algorithm_registry() {
  static const std::vector<AlgorithmSpec> registry = build_registry();
  return registry;
}

const AlgorithmSpec* find_algorithm(std::string_view name) {
  for (const auto& spec : algorithm_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const AlgorithmSpec& require_algorithm(std::string_view name) {
  if (const AlgorithmSpec* spec = find_algorithm(name)) return *spec;
  throw_unknown("algorithm", name, algorithm_registry());
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  names.reserve(algorithm_registry().size());
  for (const auto& spec : algorithm_registry()) names.push_back(spec.name);
  return names;
}

const std::vector<ObjectiveSpec>& objective_registry() {
  static const std::vector<ObjectiveSpec> registry = {
      {"coverage", "set coverage over a CSR set system (§4.1)", true},
      {"prob-coverage", "probabilistic coverage, 1-∏(1-p) saturation", true},
      {"exemplar", "exact exemplar clustering over a point set (§4.2)",
       true},
      {"sampled-exemplar",
       "exemplar clustering estimated on a fixed uniform sample (§4.2)",
       true},
      {"logdet", "log-determinant diversity (DPP MAP objective)", true},
      {"saturated-coverage", "per-element saturated (truncated) coverage",
       true},
  };
  return registry;
}

const ObjectiveSpec* find_objective(std::string_view name) {
  for (const auto& spec : objective_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const ObjectiveSpec& require_objective(std::string_view name) {
  if (const ObjectiveSpec* spec = find_objective(name)) return *spec;
  throw_unknown("objective", name, objective_registry());
}

std::vector<std::string> objective_names() {
  std::vector<std::string> names;
  names.reserve(objective_registry().size());
  for (const auto& spec : objective_registry()) names.push_back(spec.name);
  return names;
}

RunResult run_distributed(std::string_view algorithm,
                          const SubmodularOracle& oracle,
                          std::span<const ElementId> ground,
                          const RuntimeOptions& runtime,
                          const AlgorithmParams& params) {
  const AlgorithmSpec& spec = require_algorithm(algorithm);
  DistributedResult inner = spec.run(oracle, ground, params, runtime);
  RunResult result;
  result.algorithm = spec.name;
  result.solution = std::move(inner.solution);
  result.value = inner.value;
  result.stats = std::move(inner.stats);
  result.rounds = std::move(inner.rounds);
  return result;
}

}  // namespace bds
