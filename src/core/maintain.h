// CertifiedMaintainer — the certified maintenance loop over a dynamic
// corpus (ISSUE 10 tentpole, core layer).
//
// The paper's bicriteria guarantee is exactly what makes dynamism cheap: a
// value-certified superset S with f(S) ≥ (1−ε)·UB stays a valid answer for
// *any* mutated corpus until the recomputed certificate shows it has decayed
// past ε. So after each mutation batch the maintainer:
//
//   1. syncs its oracle — in place in O(degree) when the oracle supports
//      dynamic updates (incremental coverage), otherwise a rebuild from the
//      mutated corpus (data::make_dynamic_oracle fallback);
//   2. recomputes the core/upper_bound certificate against the *cached*
//      solution — one O(|ground|) oracle pass, no rounds;
//   3. re-solves with adaptive_bicriteria only when an erase removed a
//      solution member (the cached answer is unaddressable) or the ratio
//      f(S)/UB dropped below 1−ε.
//
// MaintainStats meters the kept/recertified/resolved split; the churn
// benchmark's exit gate asserts the re-solve rate stays below 100%.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "core/runtime_options.h"
#include "data/dynamic.h"
#include "objectives/submodular.h"

namespace bds {

struct MaintainConfig {
  std::size_t k = 10;          // cardinality target of the certificate
  double epsilon = 0.1;        // decay tolerance: re-solve when ratio < 1−ε
  std::string objective = "coverage";
  data::DynamicOracleOptions oracle;  // incremental vs rebuild, scalars
  // Re-solve parameters (forwarded to adaptive_bicriteria; target_ratio is
  // derived from epsilon).
  std::size_t items_per_round = 0;
  std::size_t max_rounds = 4;
  std::size_t machines = 0;
  MachineSelector selector = MachineSelector::kLazyGreedy;
  RuntimeOptions runtime;
};

// What a mutation batch cost: nothing but the certificate pass, or a full
// adaptive re-solve.
enum class MaintainDecision : std::uint8_t { kKept = 0, kResolved = 1 };

struct MaintainStats {
  std::uint64_t batches = 0;
  std::uint64_t mutations = 0;
  std::uint64_t kept = 0;      // batches absorbed by the certificate
  std::uint64_t resolved = 0;  // batches that triggered adaptive re-solve
  std::uint64_t oracle_rebuilds = 0;  // syncs that took the rebuild fallback
  std::uint64_t certificate_evals = 0;  // oracle evals spent recertifying
  std::uint64_t resolve_evals = 0;      // oracle evals spent re-solving

  // Fraction of batches that needed a re-solve; the churn gate pins < 1.
  double resolve_rate() const noexcept {
    return batches == 0
               ? 0.0
               : static_cast<double>(resolved) / static_cast<double>(batches);
  }
};

class CertifiedMaintainer {
 public:
  // Solves once at the corpus's current epoch (this initial solve is not
  // counted in stats — the stats meter mutation batches). Throws like
  // adaptive_bicriteria on bad k/epsilon and like make_dynamic_oracle on an
  // unknown objective.
  CertifiedMaintainer(std::shared_ptr<data::DynamicCorpus> corpus,
                      MaintainConfig config);

  // Single-mutation conveniences: a batch of one.
  MaintainDecision insert(std::vector<std::uint32_t> items);
  MaintainDecision erase(ElementId id);
  // Applies the whole batch to the corpus, syncs the oracle once, and makes
  // one keep/re-solve decision for the batch.
  MaintainDecision apply(std::span<const data::Mutation> batch);

  const data::DynamicCorpus& corpus() const noexcept { return *corpus_; }
  // Current-epoch fresh prototype (empty set). Never stale: every apply()
  // resyncs it before returning.
  const SubmodularOracle& oracle() const noexcept { return *oracle_; }

  const std::vector<ElementId>& solution() const noexcept { return solution_; }
  double value() const noexcept { return value_; }
  double upper_bound() const noexcept { return upper_bound_; }
  // f(S)/UB — stays ≥ 1−ε by construction (re-solve restores it).
  double certified_ratio() const noexcept { return ratio_; }
  const MaintainStats& stats() const noexcept { return stats_; }

 private:
  void sync_oracle(std::uint64_t from_epoch);
  // Recomputes value + certificate for the cached solution; returns the
  // fresh ratio.
  double recertify();
  void resolve();

  std::shared_ptr<data::DynamicCorpus> corpus_;
  MaintainConfig config_;
  std::unique_ptr<SubmodularOracle> oracle_;
  std::vector<ElementId> solution_;
  double value_ = 0.0;
  double upper_bound_ = 0.0;
  double ratio_ = 0.0;
  MaintainStats stats_;
};

}  // namespace bds
