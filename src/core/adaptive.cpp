#include "core/adaptive.h"

#include <stdexcept>

#include "core/upper_bound.h"
#include "util/rng.h"

namespace bds {

AdaptiveResult adaptive_bicriteria(const SubmodularOracle& proto,
                                   std::span<const ElementId> ground,
                                   const AdaptiveConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("adaptive bicriteria: k must be positive");
  }
  if (!(config.target_ratio > 0.0 && config.target_ratio < 1.0)) {
    throw std::invalid_argument(
        "adaptive bicriteria: target_ratio must be in (0, 1)");
  }
  if (config.max_rounds == 0) {
    throw std::invalid_argument(
        "adaptive bicriteria: max_rounds must be positive");
  }
  const std::size_t per_round =
      config.items_per_round == 0 ? config.k : config.items_per_round;
  const RuntimeOptions runtime = config.runtime;

  AdaptiveResult adaptive;
  auto accumulated = proto.clone();  // carries S across rounds

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    // One practical round on top of the accumulated solution: the round's
    // machines clone `accumulated` (holding S), exactly as a later round of
    // Algorithm 1 would.
    BicriteriaConfig round_config;
    round_config.mode = BicriteriaMode::kPractical;
    round_config.k = config.k;
    round_config.output_items = per_round;
    round_config.rounds = 1;
    round_config.machines = config.machines;
    round_config.selector = config.selector;
    round_config.stochastic_c = config.stochastic_c;
    round_config.machine_oracle_factory = config.machine_oracle_factory;
    round_config.runtime = runtime;
    round_config.runtime.seed = util::mix64(runtime.seed + round);
    // Checkpointing belongs to the outer adaptive loop, not the one-round
    // engine runs it composes (their snapshots would carry the wrong
    // program identity and a partial view of the accumulated state).
    round_config.runtime.checkpoint_sink = nullptr;
    round_config.runtime.resume_from = nullptr;
    round_config.runtime.halt_after_round = 0;

    const DistributedResult step =
        bicriteria_greedy(*accumulated, ground, round_config);

    // Fold the step into the running result.
    for (const ElementId x : step.solution) {
      accumulated->add(x);
      adaptive.result.solution.push_back(x);
    }
    for (auto round_stats : step.stats.rounds) {
      round_stats.round_index = adaptive.result.stats.rounds.size();
      adaptive.result.stats.rounds.push_back(round_stats);
    }
    for (auto span : step.stats.trace.rounds) {
      span.round_index = adaptive.result.stats.trace.rounds.size();
      adaptive.result.stats.trace.rounds.push_back(std::move(span));
    }
    RoundTrace trace;
    trace.round = round;
    trace.machines = step.rounds.empty() ? 0 : step.rounds[0].machines;
    trace.machine_budget = per_round;
    trace.central_budget = per_round;
    trace.items_added = step.solution.size();
    trace.value_after = accumulated->value();
    adaptive.result.rounds.push_back(trace);

    // Certificate: one oracle pass over the ground set.
    adaptive.upper_bound = solution_upper_bound(
        proto, adaptive.result.solution, ground, config.k);
    adaptive.certified_ratio =
        adaptive.upper_bound > 0.0
            ? accumulated->value() / adaptive.upper_bound
            : 1.0;
    adaptive.ratio_after_round.push_back(adaptive.certified_ratio);

    if (adaptive.certified_ratio >= config.target_ratio) {
      adaptive.target_reached = true;
      break;
    }
    if (step.solution.empty()) break;  // saturated; more rounds are futile
  }

  adaptive.result.value = accumulated->value();
  return adaptive;
}

}  // namespace bds
