// Knapsack(cost)-constrained submodular maximization — the budgeted variant
// every applied deployment of coverage/summarization eventually needs
// (items have heterogeneous costs; the budget caps total cost, not count).
//
// Algorithms (Khuller–Moss–Naor / Krause–Guestrin line):
//  * cost_benefit_greedy  — repeatedly take the feasible item maximizing
//                           Δ(x,S)/cost(x). Alone it can be arbitrarily
//                           bad; combined (below) it is constant-factor.
//  * plain_value_greedy   — repeatedly take the feasible item maximizing
//                           Δ(x,S) (uniform-cost greedy under the budget).
//  * knapsack_greedy      — runs both and returns the better: a
//                           (1−1/√e) ≈ 0.39 approximation (and ½(1−1/e)
//                           via the classic argument); the standard
//                           practical choice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

struct KnapsackResult {
  std::vector<ElementId> picks;   // selection order
  std::vector<double> gains;
  double gained = 0.0;
  double cost = 0.0;              // total cost spent

  std::size_t size() const noexcept { return picks.size(); }
};

// Shared preconditions for all three: costs.size() == proto.ground_size(),
// every cost > 0, budget > 0 (throws std::invalid_argument otherwise).
// Items with cost > remaining budget are skipped, not truncated.

KnapsackResult cost_benefit_greedy(SubmodularOracle& oracle,
                                   std::span<const ElementId> candidates,
                                   std::span<const double> costs,
                                   double budget);

KnapsackResult plain_value_greedy(SubmodularOracle& oracle,
                                  std::span<const ElementId> candidates,
                                  std::span<const double> costs,
                                  double budget);

// Better of the two runs (each on its own clone of `proto`); the returned
// picks are committed to nothing — evaluate with `evaluate_set` or replay.
KnapsackResult knapsack_greedy(const SubmodularOracle& proto,
                               std::span<const ElementId> candidates,
                               std::span<const double> costs, double budget);

}  // namespace bds
