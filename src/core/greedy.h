// The greedy family every algorithm in the paper is assembled from:
//
//  * greedy            — Algorithm 2 verbatim: k' passes, each picking the
//                        candidate with maximum marginal gain.
//  * lazy_greedy       — Minoux's accelerated variant; identical output
//                        (same tie-breaking), far fewer oracle evaluations.
//  * stochastic_greedy — "lazier than lazy" (§4.2 / ref [22]): each pick
//                        evaluates only a uniform sample of c·N'/k'
//                        candidates.
//  * random_subset     — the random baseline of the figures.
//
// All selectors extend the oracle's *current* set: pass a seeded oracle to
// compute Greedy(k', S, T_i) from Algorithm 2.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <cstdint>

#include "core/batch_eval.h"
#include "core/bound_heap.h"
#include "objectives/submodular.h"
#include "util/element.h"
#include "util/rng.h"

namespace bds {

struct GreedyOptions {
  GreedyOptions() = default;
  GreedyOptions(bool stop) : stop_when_no_gain(stop) {}  // NOLINT: legacy {flag} call sites

  // Stop before exhausting the budget once the best marginal gain is <= 0.
  // Algorithm 2 as written always runs k' iterations; the experiments (and
  // any sane deployment) stop early, so callers choose.
  bool stop_when_no_gain = false;
  // How candidate scans evaluate gains (serial batched by default; set
  // batch.pool for parallel evaluation of large scans). Selections are
  // bit-identical across all settings.
  BatchEvalOptions batch;
};

struct GreedyResult {
  std::vector<ElementId> picks;  // in selection order; committed to oracle
  std::vector<double> gains;     // realized marginal gain of each pick
  double gained = 0.0;           // sum of gains

  std::size_t size() const noexcept { return picks.size(); }
};

// Naive greedy: budget passes over `candidates`, each pass O(|candidates|)
// oracle evaluations. Duplicate candidate ids are evaluated once per pass
// but can be selected at most once. Ties break toward the earlier
// candidate. Elements already in the oracle's set simply have zero gain.
GreedyResult greedy(SubmodularOracle& oracle,
                    std::span<const ElementId> candidates, std::size_t budget,
                    const GreedyOptions& options = {});

// Lazy greedy: exploits submodularity — a candidate's cached gain is an
// upper bound on its current gain, so the max-heap only re-evaluates
// candidates that could still win. Produces exactly the same selection as
// greedy() (same tie-breaking on equal gains: earlier candidate wins).
GreedyResult lazy_greedy(SubmodularOracle& oracle,
                         std::span<const ElementId> candidates,
                         std::size_t budget,
                         const GreedyOptions& options = {});

// Metering + certificate export for lazy_greedy_bounded. `eval_*` records
// every exact gain the run computed (initial scans and heap refreshes, not
// add() commits), tagged with the committed-prefix length it was computed
// at — exactly what a BoundStore absorbs. Consumers that may only trust a
// subset (workers: gains on top of *local* picks are not global bounds)
// filter by prefix.
struct LazyGreedyStats {
  std::uint64_t evals = 0;          // gain evaluations actually performed
  // Evaluations a full eager re-scan (greedy()) of the same selection
  // trajectory would have performed, minus `evals`. add() commits cancel
  // out of the comparison (both sides pay them identically).
  std::uint64_t evals_avoided = 0;
  std::vector<ElementId> eval_ids;
  std::vector<double> eval_gains;
  std::vector<std::size_t> eval_prefixes;
};

// lazy_greedy with a cross-run warm start: candidates with a certificate in
// `bounds` (an exact gain recorded at prefix ≤ the oracle's current
// committed-prefix length) skip the initial scan and enter the heap at
// their stale bound; an entry whose prefix *equals* the current prefix is
// exact and needs no refresh at all (the shard-view / incremental-oracle
// bit-identical-gains contract). Selection is bit-identical to greedy() and
// lazy_greedy() in all cases — bounds only change how many evaluations it
// takes to find the same argmax. With bounds == nullptr and stats ==
// nullptr this *is* lazy_greedy: same evaluations, same order, same bits.
// The committed-prefix clock is oracle.current_set().size().
GreedyResult lazy_greedy_bounded(SubmodularOracle& oracle,
                                 std::span<const ElementId> candidates,
                                 std::size_t budget,
                                 const GreedyOptions& options,
                                 const detail::BoundStore* bounds,
                                 LazyGreedyStats* stats);

struct StochasticGreedyOptions {
  // Sample size multiplier: each pick evaluates ceil(c * N' / budget)
  // still-unselected candidates (§4.2 fixes c = 3).
  double c = 3.0;
  bool stop_when_no_gain = false;
  // Gain-evaluation path for the per-pick sample scan (see GreedyOptions).
  BatchEvalOptions batch;
};

// Stochastic ("lazier than lazy") greedy.
GreedyResult stochastic_greedy(SubmodularOracle& oracle,
                               std::span<const ElementId> candidates,
                               std::size_t budget, util::Rng& rng,
                               const StochasticGreedyOptions& options = {});

// Uniformly random selection of min(budget, #distinct candidates) distinct
// candidates, committed to the oracle (so the result carries their value).
GreedyResult random_subset(SubmodularOracle& oracle,
                           std::span<const ElementId> candidates,
                           std::size_t budget, util::Rng& rng);

// Shared helper: sorted-unique copy of `candidates` (deterministic
// canonical candidate order used by all selectors).
std::vector<ElementId> unique_candidates(std::span<const ElementId> candidates);

}  // namespace bds
