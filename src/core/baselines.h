// The distributed baselines of Table 1, all sharing the one-round
// partition -> local greedy -> central filter skeleton:
//
//  * GreeDi [23]        — deterministic (order-based) partition; each
//                         machine greedily picks k; coordinator greedily
//                         picks k from the union; output the better of the
//                         coordinator's solution and the best machine's.
//  * RandGreeDi [5]     — same merge, uniform random partition (0.316-apx).
//  * PseudoGreedy [21]  — random partition; machines return β·k items
//                         (β = 4 per the 0.54-approximation analysis);
//                         coordinator greedily picks k from the union;
//                         best-of merge.
//  * NaiveDistributedGreedy — repeats a RandGreeDi-style round ⌈ln(1/ε)⌉
//                         times, each adding k items on top of the
//                         accumulated solution: (1−ε)-approximation with
//                         k·⌈ln(1/ε)⌉ items (the Table 1 row this paper
//                         improves on).
//
// And the centralized references:
//  * centralized_greedy       — single machine, lazy greedy, k items.
//  * centralized_bicriteria   — single machine, k·⌈ln(1/ε)⌉ items (the
//                               (1−ε) reference with logarithmic blow-up).
#pragma once

#include <cstdint>
#include <span>

#include "core/distributed.h"
#include "core/runtime_options.h"
#include "objectives/submodular.h"

namespace bds {

struct OneRoundConfig {
  std::size_t k = 10;
  std::size_t machines = 0;  // 0 → ⌈√(n/k)⌉ (load-balancing default)
  // Machine output size multiplier: machines return ⌈budget_factor·k⌉ items.
  double budget_factor = 1.0;
  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;
  bool stop_when_no_gain = true;
  MachineOracleFactory machine_oracle_factory;
  // Execution-environment knobs (core/runtime_options.h).
  RuntimeOptions runtime;
};

DistributedResult greedi(const SubmodularOracle& proto,
                         std::span<const ElementId> ground,
                         const OneRoundConfig& config);

DistributedResult rand_greedi(const SubmodularOracle& proto,
                              std::span<const ElementId> ground,
                              const OneRoundConfig& config);

// PseudoGreedy: OneRoundConfig::budget_factor defaults are overridden to 4
// unless the caller sets a different positive value explicitly.
DistributedResult pseudo_greedy(const SubmodularOracle& proto,
                                std::span<const ElementId> ground,
                                OneRoundConfig config);

struct NaiveDistributedConfig {
  std::size_t k = 10;
  double epsilon = 0.1;       // target 1-ε; rounds = ⌈ln(1/ε)⌉
  std::size_t machines = 0;   // 0 → ⌈√(n/k)⌉
  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;
  bool stop_when_no_gain = true;
  MachineOracleFactory machine_oracle_factory;
  RuntimeOptions runtime;  // see core/runtime_options.h
};

DistributedResult naive_distributed_greedy(const SubmodularOracle& proto,
                                           std::span<const ElementId> ground,
                                           const NaiveDistributedConfig& config);

// ParallelAlg (Barbosa, Ene, Nguyen, Ward [6] — "a new framework for
// distributed submodular maximization"): the accumulating-pool framework
// for the cardinality constraint. Runs Θ(1/ε) rounds; in each round the
// ground set is randomly re-partitioned and every machine runs greedy over
// its shard *plus the pool of all previously returned candidates*; the
// returned solutions join the pool. The final solution is the better of a
// central greedy-k over the pool and the best single machine solution.
// Output size k, (1−1/e−ε)-approximation, O(1/ε) rounds, pool (and thus
// per-round broadcast) of size O(m·k/ε) — the Table 1 row between the
// one-round core-set algorithms and GreedyScaling.
struct ParallelAlgConfig {
  std::size_t k = 10;
  double epsilon = 0.25;     // rounds = ⌈1/ε⌉
  std::size_t machines = 0;  // 0 → ⌈√(n/k)⌉
  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;
  bool stop_when_no_gain = true;
  MachineOracleFactory machine_oracle_factory;
  RuntimeOptions runtime;  // see core/runtime_options.h
};

DistributedResult parallel_alg(const SubmodularOracle& proto,
                               std::span<const ElementId> ground,
                               const ParallelAlgConfig& config);

// GreedyScaling [18] (Kumar, Moseley, Vassilvitskii, Vattani): distributed
// threshold greedy. A decreasing threshold τ sweeps from Δ (the max
// singleton value) down to ε·Δ/k by factors of (1−ε); each sweep step is
// one distributed round in which machines return items whose marginal gain
// (on top of the accumulated S) clears τ, and the coordinator keeps those
// that still clear it. (1−1/e−ε)-approximation with k items in
// O(log(Δ·k/ε)/ε) rounds — the Table 1 row with the most rounds.
struct GreedyScalingConfig {
  std::size_t k = 10;
  double epsilon = 0.2;      // threshold decay and guarantee slack
  std::size_t machines = 0;  // 0 → ⌈√(n/k)⌉
  bool stop_when_no_gain = true;
  RuntimeOptions runtime;  // see core/runtime_options.h
};

DistributedResult greedy_scaling(const SubmodularOracle& proto,
                                 std::span<const ElementId> ground,
                                 const GreedyScalingConfig& config);

// Single-machine references (no cluster involved; stats left empty except
// for a one-round record carrying the evaluation count).
DistributedResult centralized_greedy(const SubmodularOracle& proto,
                                     std::span<const ElementId> ground,
                                     std::size_t k, bool lazy = true);

DistributedResult centralized_bicriteria(const SubmodularOracle& proto,
                                         std::span<const ElementId> ground,
                                         std::size_t k, double epsilon,
                                         bool lazy = true);

}  // namespace bds
