// Shared result/trace types for all distributed algorithms (BicriteriaGreedy
// variants and the Table-1 baselines), plus the knobs that control how a
// logical machine runs its local greedy pass.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/cluster.h"
#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// How each worker machine selects its summary.
enum class MachineSelector {
  kGreedy,            // Algorithm 2 verbatim
  kLazyGreedy,        // same output, fewer evaluations (default)
  kStochasticGreedy,  // §4.2 sampled variant for expensive oracles
};

// How a round's worker obtains its oracle when no MachineOracleFactory is
// set. Both produce bit-identical selections (the shard-view contract in
// objectives/submodular.h); they differ only in worker memory: a clone
// carries O(ground)-sized mutable state, a compacted view carries O(shard).
// Objectives without a compacted representation silently fall back to
// cloning under kShardView.
enum class WorkerOracleMode {
  kClone,      // PR-1 behaviour: clone the coordinator oracle per machine
  kShardView,  // default: shard-compacted view, O(shard) worker state
};

// Optional hook: build machine i's *fresh* (empty-set) oracle. When unset,
// machines clone the coordinator's oracle — for sampled oracles, supply a
// factory so each machine estimates on its own independent sample (§4.2).
using MachineOracleFactory =
    std::function<std::unique_ptr<SubmodularOracle>(std::size_t machine)>;

// Per-round trace of a distributed execution.
struct RoundTrace {
  std::size_t round = 0;           // 0-based
  double alpha = 0.0;              // α used this round (theory modes)
  std::size_t machines = 0;        // m
  std::size_t machine_budget = 0;  // items each machine may return
  std::size_t central_budget = 0;  // items the coordinator may keep
  std::size_t items_added = 0;     // items actually added to S this round
  double value_after = 0.0;        // coordinator oracle value after round
};

struct DistributedResult {
  std::vector<ElementId> solution;  // selection order, across rounds
  double value = 0.0;               // coordinator oracle's final value
  dist::ExecutionStats stats;       // rounds / communication / critical path
  std::vector<RoundTrace> rounds;
  // Evaluations charged to the coordinator oracle over this run (engine
  // runs only; centralized references leave it 0). For a fresh run this
  // equals Σ stats.rounds[i].central_evals — the per-round deltas account
  // for every coordinator evaluation exactly once; a resumed run reports
  // only the resumed tail (earlier rounds' evals live in the checkpoint).
  std::uint64_t coordinator_evals = 0;

  std::size_t size() const noexcept { return solution.size(); }
};

}  // namespace bds
