// Adaptive-round BicriteriaGreedy: run one practical round at a time and
// stop as soon as the solution is *certifiably* within the target factor of
// the k-item optimum, using the paper's own upper bound (§4.1) as the
// stopping certificate:
//
//   f(S) / UB(S) >= target   =>   f(S) >= target · f(OPT_k).
//
// This operationalizes the paper's observation that real instances converge
// in one round while hard instances need a few: instead of fixing r ahead
// of time, spend rounds only while the certificate says they are needed.
// Each round costs one UB computation (one oracle pass over the ground
// set) on top of the round itself.
#pragma once

#include <cstdint>
#include <span>

#include "core/bicriteria.h"
#include "core/distributed.h"
#include "core/runtime_options.h"
#include "objectives/submodular.h"

namespace bds {

struct AdaptiveConfig {
  std::size_t k = 10;            // cardinality target of the certificate
  std::size_t items_per_round = 0;  // output per round; 0 → k
  double target_ratio = 0.95;    // stop at f(S) >= target · UB
  std::size_t max_rounds = 8;    // hard stop
  std::size_t machines = 0;      // 0 → ⌈√(n/k')⌉
  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;
  MachineOracleFactory machine_oracle_factory;
  RuntimeOptions runtime;  // see core/runtime_options.h
};

struct AdaptiveResult {
  DistributedResult result;        // solution + stats of the executed rounds
  double upper_bound = 0.0;        // final certificate denominator
  double certified_ratio = 0.0;    // f(S) / UB at termination
  bool target_reached = false;     // false iff max_rounds ran out first
  std::vector<double> ratio_after_round;  // certificate trajectory
};

// Throws std::invalid_argument on k == 0, target_ratio outside (0, 1), or
// max_rounds == 0.
AdaptiveResult adaptive_bicriteria(const SubmodularOracle& proto,
                                   std::span<const ElementId> ground,
                                   const AdaptiveConfig& config);

}  // namespace bds
