// The Theorem 3.1 lower-bound construction: a coverage instance on which any
// one-distributed-round algorithm needs Ω(k/ε) output items to reach a
// (1−ε)-approximation.
//
// Three families of sets over a universe of L elements:
//   𝔸 — k/2 disjoint sets jointly covering a (1−2ε) fraction of U;
//   𝔹 — k/2 disjoint sets covering the remaining 2ε fraction;
//   ℂ — n−k random sets, each the same size as a 𝔹-set.
// OPT = 𝔸 ∪ 𝔹 covers everything. A machine that receives a 𝔹-set and
// otherwise only ℂ-sets cannot distinguish them (information-theoretically),
// so most of 𝔹 is lost after one round and the coordinator must compensate
// with many small ℂ-sets.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "objectives/coverage.h"
#include "util/element.h"

namespace bds {

struct HardnessConfig {
  std::size_t k = 10;            // must be even and >= 2
  double epsilon = 0.125;        // must be in (0, 1/2)
  std::uint32_t universe = 40'000;  // L (paper: L >> n)
  std::size_t total_items = 4'000;  // n (paper: n, m >> k)
  std::uint64_t seed = 1;
};

struct HardnessInstance {
  std::shared_ptr<const SetSystem> sets;
  std::vector<ElementId> family_a;  // ids of 𝔸
  std::vector<ElementId> family_b;  // ids of 𝔹
  std::vector<ElementId> family_c;  // ids of ℂ
  HardnessConfig config;

  // All n item ids (𝔸 then 𝔹 then ℂ).
  std::vector<ElementId> all_items() const;
  // The planted optimum 𝔸 ∪ 𝔹 (covers the whole universe).
  std::vector<ElementId> optimum() const;
};

// Builds the instance. Throws std::invalid_argument when k is odd/zero,
// epsilon outside (0, 1/2), total_items <= k, or the universe is too small
// to give every set at least one element.
HardnessInstance make_hardness_instance(const HardnessConfig& config);

// Measurement used by the hardness bench/tests: given a solution, how many
// ℂ-sets it contains and what fraction of OPT's value it reaches.
struct HardnessOutcome {
  std::size_t a_selected = 0;
  std::size_t b_selected = 0;
  std::size_t c_selected = 0;
  double value = 0.0;
  double optimum_value = 0.0;
  double ratio = 0.0;
};

HardnessOutcome evaluate_hardness_solution(
    const HardnessInstance& instance, std::span<const ElementId> solution);

}  // namespace bds
