#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/greedy.h"
#include "core/machine_runner.h"
#include "dist/cluster.h"
#include "dist/partitioner.h"
#include "util/rng.h"
#include "util/timer.h"

namespace bds {

namespace {

std::size_t default_machines(std::size_t ground_size, std::size_t k) {
  if (ground_size == 0) return 1;
  const double ratio = static_cast<double>(ground_size) /
                       static_cast<double>(std::max<std::size_t>(1, k));
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::sqrt(ratio))));
}

// Shared skeleton for the one-round greedy-of-greedies algorithms. The
// "best-of" merge (coordinator solution vs best single machine summary) is
// the GreeDi-family output rule.
DistributedResult one_round_merge(const SubmodularOracle& proto,
                                  std::span<const ElementId> ground,
                                  const OneRoundConfig& config,
                                  bool random_partition) {
  if (config.k == 0) {
    throw std::invalid_argument("one-round baseline: k must be positive");
  }
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);
  const auto machine_budget = static_cast<std::size_t>(std::ceil(
      std::max(1.0, config.budget_factor) * static_cast<double>(config.k)));
  const RuntimeOptions runtime = detail::resolve_runtime(config);

  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  const dist::Partition partition =
      random_partition ? dist::partition_uniform(ground, machines, rng)
                       : dist::partition_round_robin(ground, machines);

  detail::MachineWorkerConfig worker_config;
  worker_config.selector = config.selector;
  worker_config.stochastic_c = config.stochastic_c;
  worker_config.stop_when_no_gain = config.stop_when_no_gain;
  worker_config.budget = machine_budget;
  worker_config.seed = runtime.seed;
  worker_config.round = 0;
  worker_config.central = central.get();
  worker_config.factory = config.machine_oracle_factory
                              ? &config.machine_oracle_factory
                              : nullptr;
  worker_config.worker_oracle = runtime.worker_oracle;

  const auto reports =
      cluster.run_round(partition, detail::make_machine_worker(worker_config));

  // Coordinator: greedy k over the union of summaries.
  util::Timer timer;
  std::vector<ElementId> pool;
  for (const auto& report : reports) {
    pool.insert(pool.end(), report.summary().begin(), report.summary().end());
  }
  GreedyOptions central_options{config.stop_when_no_gain};
  if (runtime.parallel_central) central_options.batch.pool = &cluster.pool();
  const GreedyResult filtered =
      lazy_greedy(*central, pool, config.k, central_options);
  cluster.record_central_stage(central->evals(), timer.elapsed_seconds(),
                               filtered.picks.size());

  // Best-of merge: the best machine's own k-prefix may beat the filtered
  // coordinator set (GreeDi outputs the max of the two).
  double best_machine_value = -1.0;
  std::span<const ElementId> best_machine;
  for (const auto& report : reports) {
    const std::span<const ElementId> prefix(
        report.summary().data(),
        std::min(report.summary().size(), config.k));
    const double v = evaluate_set(proto, prefix);
    if (v > best_machine_value) {
      best_machine_value = v;
      best_machine = prefix;
    }
  }

  DistributedResult result;
  if (best_machine_value > central->value()) {
    result.solution.assign(best_machine.begin(), best_machine.end());
    result.value = best_machine_value;
  } else {
    result.solution = filtered.picks;
    result.value = central->value();
  }

  RoundTrace trace;
  trace.round = 0;
  trace.machines = machines;
  trace.machine_budget = machine_budget;
  trace.central_budget = config.k;
  trace.items_added = result.solution.size();
  trace.value_after = result.value;
  result.rounds.push_back(trace);
  result.stats = cluster.stats();
  return result;
}

}  // namespace

DistributedResult greedi(const SubmodularOracle& proto,
                         std::span<const ElementId> ground,
                         const OneRoundConfig& config) {
  return one_round_merge(proto, ground, config, /*random_partition=*/false);
}

DistributedResult rand_greedi(const SubmodularOracle& proto,
                              std::span<const ElementId> ground,
                              const OneRoundConfig& config) {
  return one_round_merge(proto, ground, config, /*random_partition=*/true);
}

DistributedResult pseudo_greedy(const SubmodularOracle& proto,
                                std::span<const ElementId> ground,
                                OneRoundConfig config) {
  if (config.budget_factor <= 1.0) config.budget_factor = 4.0;
  return one_round_merge(proto, ground, config, /*random_partition=*/true);
}

DistributedResult naive_distributed_greedy(
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    const NaiveDistributedConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("naive distributed: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("naive distributed: epsilon in (0,1)");
  }
  const auto rounds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::log(1.0 / config.epsilon))));
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);

  const RuntimeOptions runtime = detail::resolve_runtime(config);
  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  GreedyOptions central_options{config.stop_when_no_gain};
  if (runtime.parallel_central) central_options.batch.pool = &cluster.pool();

  DistributedResult result;
  for (std::size_t round = 0; round < rounds; ++round) {
    const dist::Partition partition =
        dist::partition_uniform(ground, machines, rng);

    detail::MachineWorkerConfig worker_config;
    worker_config.selector = config.selector;
    worker_config.stochastic_c = config.stochastic_c;
    worker_config.stop_when_no_gain = config.stop_when_no_gain;
    worker_config.budget = config.k;
    worker_config.seed = runtime.seed;
    worker_config.round = round;
    worker_config.central = central.get();
    worker_config.factory = config.machine_oracle_factory
                                ? &config.machine_oracle_factory
                                : nullptr;
    worker_config.worker_oracle = runtime.worker_oracle;

    const auto reports = cluster.run_round(
        partition, detail::make_machine_worker(worker_config));

    util::Timer timer;
    const std::uint64_t evals_before = central->evals();
    std::vector<ElementId> pool;
    for (const auto& report : reports) {
      pool.insert(pool.end(), report.summary().begin(),
                  report.summary().end());
    }
    const GreedyResult filtered =
        lazy_greedy(*central, pool, config.k, central_options);
    cluster.record_central_stage(central->evals() - evals_before,
                                 timer.elapsed_seconds(),
                                 filtered.picks.size());
    result.solution.insert(result.solution.end(), filtered.picks.begin(),
                           filtered.picks.end());

    RoundTrace trace;
    trace.round = round;
    trace.machines = machines;
    trace.machine_budget = config.k;
    trace.central_budget = config.k;
    trace.items_added = filtered.picks.size();
    trace.value_after = central->value();
    result.rounds.push_back(trace);
  }

  result.value = central->value();
  result.stats = cluster.stats();
  return result;
}

DistributedResult parallel_alg(const SubmodularOracle& proto,
                               std::span<const ElementId> ground,
                               const ParallelAlgConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("parallel alg: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("parallel alg: epsilon in (0,1)");
  }
  const auto rounds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(1.0 / config.epsilon)));
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);

  const RuntimeOptions runtime = detail::resolve_runtime(config);
  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  DistributedResult result;
  std::vector<ElementId> pool;           // all candidates returned so far
  std::vector<ElementId> best_machine;   // best single-machine solution
  double best_machine_value = -1.0;

  for (std::size_t round = 0; round < rounds; ++round) {
    // Scatter the ground set, then broadcast the accumulated pool to every
    // machine (appending it to each shard makes the cluster meter the
    // broadcast as scattered elements, matching [6]'s communication model).
    dist::Partition partition =
        dist::partition_uniform(ground, machines, rng);
    for (auto& shard : partition) {
      shard.insert(shard.end(), pool.begin(), pool.end());
    }

    detail::MachineWorkerConfig worker_config;
    worker_config.selector = config.selector;
    worker_config.stochastic_c = config.stochastic_c;
    worker_config.stop_when_no_gain = config.stop_when_no_gain;
    worker_config.budget = config.k;
    worker_config.seed = runtime.seed;
    worker_config.round = round;
    worker_config.central = central.get();
    worker_config.factory = config.machine_oracle_factory
                                ? &config.machine_oracle_factory
                                : nullptr;
    worker_config.worker_oracle = runtime.worker_oracle;

    const auto reports = cluster.run_round(
        partition, detail::make_machine_worker(worker_config));

    util::Timer timer;
    std::size_t gathered = 0;
    for (const auto& report : reports) {
      pool.insert(pool.end(), report.summary().begin(),
                  report.summary().end());
      gathered += report.summary().size();
      const double v = evaluate_set(proto, report.summary());
      if (v > best_machine_value) {
        best_machine_value = v;
        best_machine = report.summary();
      }
    }
    pool = unique_candidates(pool);
    cluster.record_central_stage(0, timer.elapsed_seconds(), 0);

    RoundTrace trace;
    trace.round = round;
    trace.machines = machines;
    trace.machine_budget = config.k;
    trace.central_budget = 0;       // filtering happens once, after round r
    trace.items_added = gathered;   // candidates added to the pool
    trace.value_after = best_machine_value;  // running best machine solution
    result.rounds.push_back(trace);
  }

  // Final filter: central greedy k over the pool (this union is the
  // largest candidate set any coordinator stage sees — O(m·k/ε) ids — so
  // it benefits most from the parallel batch evaluator).
  util::Timer final_timer;
  GreedyOptions final_options{config.stop_when_no_gain};
  if (runtime.parallel_central) final_options.batch.pool = &cluster.pool();
  const GreedyResult filtered =
      lazy_greedy(*central, pool, config.k, final_options);
  cluster.mutable_stats().rounds.back().central_evals = central->evals();
  cluster.mutable_stats().rounds.back().central_seconds +=
      final_timer.elapsed_seconds();
  cluster.mutable_stats().rounds.back().central_selected =
      filtered.picks.size();

  if (best_machine_value > central->value()) {
    result.solution = best_machine;
    result.value = best_machine_value;
  } else {
    result.solution = filtered.picks;
    result.value = central->value();
  }
  result.rounds.back().central_budget = config.k;
  result.rounds.back().value_after = result.value;
  result.stats = cluster.stats();
  return result;
}

DistributedResult greedy_scaling(const SubmodularOracle& proto,
                                 std::span<const ElementId> ground,
                                 const GreedyScalingConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("greedy scaling: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("greedy scaling: epsilon in (0,1)");
  }
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machines(ground.size(), config.k);

  const RuntimeOptions runtime = detail::resolve_runtime(config);
  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(machines, runtime.cluster_options());
  util::Rng rng(util::mix64(runtime.seed));

  DistributedResult result;
  if (ground.empty()) {
    result.stats = cluster.stats();
    return result;
  }

  // Δ = max singleton value (one oracle pass; in MapReduce this is a cheap
  // max-reduce, so we do not charge it as a round).
  double delta = 0.0;
  {
    auto probe = proto.clone();
    for (const ElementId x : ground) delta = std::max(delta, probe->gain(x));
  }
  if (delta <= 0.0) {
    result.stats = cluster.stats();
    return result;
  }

  const double floor_tau =
      config.epsilon * delta / static_cast<double>(config.k);
  double tau = delta;
  std::size_t round = 0;

  while (result.solution.size() < config.k && tau >= floor_tau) {
    const std::size_t remaining = config.k - result.solution.size();
    const dist::Partition partition =
        dist::partition_uniform(ground, machines, rng);

    // Threshold worker: greedily keep shard items whose marginal on top of
    // S ∪ (local picks) clears τ, up to `remaining` of them.
    const double threshold = tau;
    const SubmodularOracle* central_ptr = central.get();
    const bool use_view =
        runtime.worker_oracle == WorkerOracleMode::kShardView;
    const auto worker = [threshold, remaining, central_ptr, use_view](
                            std::size_t,
                            std::span<const ElementId> shard)
        -> dist::WorkerOutput {
      auto oracle =
          use_view ? central_ptr->shard_view(shard) : central_ptr->clone();
      dist::WorkerOutput output;
      for (const ElementId x : shard) {
        if (output.summary.size() >= remaining) break;
        if (oracle->gain(x) >= threshold) {
          oracle->add(x);
          output.summary.push_back(x);
        }
      }
      output.oracle_evals = oracle->evals();
      output.state_bytes = oracle->state_bytes();
      return output;
    };
    const auto reports = cluster.run_round(partition, worker);

    util::Timer timer;
    const std::uint64_t evals_before = central->evals();
    std::size_t added = 0;
    for (const auto& report : reports) {
      for (const ElementId x : report.summary()) {
        if (result.solution.size() >= config.k) break;
        if (central->gain(x) >= threshold) {
          central->add(x);
          result.solution.push_back(x);
          ++added;
        }
      }
    }
    cluster.record_central_stage(central->evals() - evals_before,
                                 timer.elapsed_seconds(), added);

    RoundTrace trace;
    trace.round = round++;
    trace.machines = machines;
    trace.machine_budget = remaining;
    trace.central_budget = remaining;
    trace.items_added = added;
    trace.value_after = central->value();
    result.rounds.push_back(trace);

    tau *= (1.0 - config.epsilon);
  }

  result.value = central->value();
  result.stats = cluster.stats();
  return result;
}

DistributedResult centralized_greedy(const SubmodularOracle& proto,
                                     std::span<const ElementId> ground,
                                     std::size_t k, bool lazy) {
  auto oracle = proto.clone();
  const GreedyResult selection =
      lazy ? lazy_greedy(*oracle, ground, k, {true})
           : greedy(*oracle, ground, k, {true});
  DistributedResult result;
  result.solution = selection.picks;
  result.value = oracle->value();

  RoundTrace trace;
  trace.machines = 1;
  trace.machine_budget = k;
  trace.central_budget = k;
  trace.items_added = selection.picks.size();
  trace.value_after = result.value;
  result.rounds.push_back(trace);

  dist::RoundStats stats;
  stats.machines_used = 1;
  stats.elements_scattered = ground.size();
  stats.worker_evals = oracle->evals();
  stats.max_machine_evals = oracle->evals();
  result.stats.rounds.push_back(stats);
  return result;
}

DistributedResult centralized_bicriteria(const SubmodularOracle& proto,
                                         std::span<const ElementId> ground,
                                         std::size_t k, double epsilon,
                                         bool lazy) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("centralized bicriteria: epsilon in (0,1)");
  }
  const auto budget = static_cast<std::size_t>(std::ceil(
      static_cast<double>(k) * std::log(1.0 / epsilon)));
  return centralized_greedy(proto, ground, std::max(k, budget), lazy);
}

}  // namespace bds
