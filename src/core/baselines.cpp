#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "core/greedy.h"
#include "core/round_spec.h"
#include "dist/engine.h"
#include "dist/cluster.h"

namespace bds {

namespace {

// Shared spec-builder for the one-round greedy-of-greedies algorithms. The
// "best-of" merge (coordinator solution vs best single machine summary) is
// the GreeDi-family output rule.
DistributedResult one_round_merge(const SubmodularOracle& proto,
                                  std::span<const ElementId> ground,
                                  const OneRoundConfig& config,
                                  bool random_partition, const char* id) {
  if (config.k == 0) {
    throw std::invalid_argument("one-round baseline: k must be positive");
  }
  const std::size_t machines =
      config.machines != 0 ? config.machines
                           : default_machine_count(ground.size(), config.k);
  const auto machine_budget = static_cast<std::size_t>(std::ceil(
      std::max(1.0, config.budget_factor) * static_cast<double>(config.k)));

  RoundProgram program;
  program.id = id;
  program.machines = machines;
  program.stop_when_no_gain = config.stop_when_no_gain;
  // Each machine's own k-prefix may beat the filtered coordinator set
  // (GreeDi outputs the max of the two).
  program.merge.rule = MergeRule::kBestOfMachines;
  program.merge.probe_prefix = config.k;
  program.oracle_factory = config.machine_oracle_factory
                               ? &config.machine_oracle_factory
                               : nullptr;
  program.next_round =
      [&config, random_partition, machine_budget](
          const EngineProgress& progress) -> std::optional<RoundSpec> {
    if (progress.round >= 1) return std::nullopt;
    RoundSpec spec;
    spec.partition = random_partition ? PartitionStrategy::kUniform
                                      : PartitionStrategy::kRoundRobin;
    spec.worker =
        SelectorWorkerSpec{config.selector, config.stochastic_c,
                           config.stop_when_no_gain, machine_budget};
    spec.filter = GreedyFilterSpec{config.k};
    spec.machine_budget = machine_budget;
    spec.central_budget = config.k;
    return spec;
  };
  return run_round_program(proto, ground, program,
                           config.runtime);
}

}  // namespace

DistributedResult greedi(const SubmodularOracle& proto,
                         std::span<const ElementId> ground,
                         const OneRoundConfig& config) {
  return one_round_merge(proto, ground, config, /*random_partition=*/false,
                         "greedi");
}

DistributedResult rand_greedi(const SubmodularOracle& proto,
                              std::span<const ElementId> ground,
                              const OneRoundConfig& config) {
  return one_round_merge(proto, ground, config, /*random_partition=*/true,
                         "rand-greedi");
}

DistributedResult pseudo_greedy(const SubmodularOracle& proto,
                                std::span<const ElementId> ground,
                                OneRoundConfig config) {
  if (config.budget_factor <= 1.0) config.budget_factor = 4.0;
  return one_round_merge(proto, ground, config, /*random_partition=*/true,
                         "pseudo-greedy");
}

DistributedResult naive_distributed_greedy(
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    const NaiveDistributedConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("naive distributed: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("naive distributed: epsilon in (0,1)");
  }
  const auto rounds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::log(1.0 / config.epsilon))));
  const std::size_t machines =
      config.machines != 0 ? config.machines
                           : default_machine_count(ground.size(), config.k);

  RoundProgram program;
  program.id = "naive-distributed";
  program.machines = machines;
  program.stop_when_no_gain = config.stop_when_no_gain;
  program.oracle_factory = config.machine_oracle_factory
                               ? &config.machine_oracle_factory
                               : nullptr;
  program.next_round =
      [&config, rounds](const EngineProgress& progress)
      -> std::optional<RoundSpec> {
    if (progress.round >= rounds) return std::nullopt;
    RoundSpec spec;
    spec.partition = PartitionStrategy::kUniform;
    spec.worker = SelectorWorkerSpec{config.selector, config.stochastic_c,
                                     config.stop_when_no_gain, config.k};
    spec.filter = GreedyFilterSpec{config.k};
    spec.machine_budget = config.k;
    spec.central_budget = config.k;
    return spec;
  };
  return run_round_program(proto, ground, program,
                           config.runtime);
}

DistributedResult parallel_alg(const SubmodularOracle& proto,
                               std::span<const ElementId> ground,
                               const ParallelAlgConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("parallel alg: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("parallel alg: epsilon in (0,1)");
  }
  const auto rounds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(1.0 / config.epsilon)));
  const std::size_t machines =
      config.machines != 0 ? config.machines
                           : default_machine_count(ground.size(), config.k);

  RoundProgram program;
  program.id = "parallel-alg";
  program.machines = machines;
  program.stop_when_no_gain = config.stop_when_no_gain;
  // No per-round selection: summaries accumulate into the candidate pool;
  // after round r a single lazy greedy k filters the pool (this union is
  // the largest candidate set any coordinator stage sees — O(m·k/ε) ids —
  // so it benefits most from the parallel batch evaluator), competing
  // against the best single machine summary.
  program.merge.rule = MergeRule::kBestOfMachines;
  program.merge.probe_prefix = std::numeric_limits<std::size_t>::max();
  program.merge.final_filter_budget = config.k;
  program.oracle_factory = config.machine_oracle_factory
                               ? &config.machine_oracle_factory
                               : nullptr;
  program.next_round =
      [&config, rounds](const EngineProgress& progress)
      -> std::optional<RoundSpec> {
    if (progress.round >= rounds) return std::nullopt;
    RoundSpec spec;
    spec.partition = PartitionStrategy::kUniform;
    // Broadcasting the accumulated pool to every machine makes the cluster
    // meter the broadcast as scattered elements, matching [6]'s
    // communication model.
    spec.broadcast_pool = true;
    spec.worker = SelectorWorkerSpec{config.selector, config.stochastic_c,
                                     config.stop_when_no_gain, config.k};
    spec.filter = PoolFilterSpec{};
    spec.machine_budget = config.k;
    spec.central_budget = 0;  // filtering happens once, after round r
    return spec;
  };
  return run_round_program(proto, ground, program,
                           config.runtime);
}

DistributedResult greedy_scaling(const SubmodularOracle& proto,
                                 std::span<const ElementId> ground,
                                 const GreedyScalingConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("greedy scaling: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("greedy scaling: epsilon in (0,1)");
  }
  const std::size_t machines =
      config.machines != 0 ? config.machines
                           : default_machine_count(ground.size(), config.k);

  // Δ = max singleton value (one oracle pass; in MapReduce this is a cheap
  // max-reduce, so we do not charge it as a round).
  double delta = 0.0;
  if (!ground.empty()) {
    auto probe = proto.clone();
    for (const ElementId x : ground) delta = std::max(delta, probe->gain(x));
  }
  const double floor_tau =
      config.epsilon * delta / static_cast<double>(config.k);

  RoundProgram program;
  program.id = "greedy-scaling";
  program.machines = machines;
  program.stop_when_no_gain = config.stop_when_no_gain;
  program.next_round =
      [&config, delta, floor_tau](const EngineProgress& progress)
      -> std::optional<RoundSpec> {
    if (delta <= 0.0) return std::nullopt;  // empty ground / zero objective
    if (progress.solution_size >= config.k) return std::nullopt;
    // τ_r = Δ·(1-ε)^r, recomputed by repeated multiplication so round r's
    // threshold is bit-identical whether reached live or after a resume.
    double tau = delta;
    for (std::size_t i = 0; i < progress.round; ++i) {
      tau *= (1.0 - config.epsilon);
    }
    if (tau < floor_tau) return std::nullopt;

    const std::size_t remaining = config.k - progress.solution_size;
    RoundSpec spec;
    spec.partition = PartitionStrategy::kUniform;
    spec.worker = ThresholdWorkerSpec{tau, remaining};
    spec.filter = ThresholdFilterSpec{tau, config.k};
    spec.machine_budget = remaining;
    spec.central_budget = remaining;
    return spec;
  };
  return run_round_program(proto, ground, program,
                           config.runtime);
}

DistributedResult centralized_greedy(const SubmodularOracle& proto,
                                     std::span<const ElementId> ground,
                                     std::size_t k, bool lazy) {
  auto oracle = proto.clone();
  const GreedyResult selection =
      lazy ? lazy_greedy(*oracle, ground, k, {true})
           : greedy(*oracle, ground, k, {true});
  DistributedResult result;
  result.solution = selection.picks;
  result.value = oracle->value();

  RoundTrace trace;
  trace.machines = 1;
  trace.machine_budget = k;
  trace.central_budget = k;
  trace.items_added = selection.picks.size();
  trace.value_after = result.value;
  result.rounds.push_back(trace);

  dist::RoundStats stats;
  stats.machines_used = 1;
  stats.elements_scattered = ground.size();
  stats.worker_evals = oracle->evals();
  stats.max_machine_evals = oracle->evals();
  result.stats.rounds.push_back(stats);
  return result;
}

DistributedResult centralized_bicriteria(const SubmodularOracle& proto,
                                         std::span<const ElementId> ground,
                                         std::size_t k, double epsilon,
                                         bool lazy) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("centralized bicriteria: epsilon in (0,1)");
  }
  const auto budget = static_cast<std::size_t>(std::ceil(
      static_cast<double>(k) * std::log(1.0 / epsilon)));
  return centralized_greedy(proto, ground, std::max(k, budget), lazy);
}

}  // namespace bds
