// The paper's optimum upper bound (§4.1, "Upperbound"): for any solution S,
//
//   f(OPT_k) <= f(S) + Σ (top-k marginal gains Δ(x, S) over x ∈ N),
//
// by monotone submodularity (each of OPT's k elements adds at most its
// marginal on top of S). Combined with the objective's trivial cap
// (max_value(): |U| for coverage, n·d0 for exemplar clustering), the
// reported bound is the minimum of the two — exactly how the paper computes
// the denominators of Figures 1 and 2.
#pragma once

#include <cstddef>
#include <span>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// Upper bound on f(OPT_k) derived from `solution`. `proto` must be a fresh
// (empty-set) oracle prototype; `ground` is the candidate universe scanned
// for the top-k marginals. O(|ground|) oracle evaluations.
double solution_upper_bound(const SubmodularOracle& proto,
                            std::span<const ElementId> solution,
                            std::span<const ElementId> ground, std::size_t k);

// Tightest bound over several solutions (the paper reports "the best
// upperbound achieved" per dataset/k pair).
double best_upper_bound(const SubmodularOracle& proto,
                        std::span<const std::vector<ElementId>> solutions,
                        std::span<const ElementId> ground, std::size_t k);

}  // namespace bds
