// Total-curvature estimation and curvature-refined guarantees.
//
// The total curvature of a monotone submodular f,
//
//   c = 1 − min_{x: f({x})>0}  Δ(x, V∖{x}) / f({x}),
//
// measures how far f is from modular (c = 0: modular, greedy is optimal;
// c = 1: fully curved, the generic 1−1/e bound is tight). Conforti–Cornuéjols
// refine greedy's guarantee to (1 − e^{−c})/c — for instances with low
// measured curvature this certifies much more than 63%, which is exactly
// the kind of instance-specific certificate a practitioner pairs with the
// §4.1 upper bound.
//
// Computing c exactly needs one pass with the full set committed; for large
// grounds a sampled estimate over a uniform subset of elements is provided
// (an upper bound on the sampled elements' curvature, not a uniform bound —
// the report says which was used).
#pragma once

#include <cstdint>
#include <span>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

struct CurvatureEstimate {
  double curvature = 1.0;       // c in [0, 1]
  std::size_t elements_used = 0;
  bool exact = false;           // true iff every element was measured
  // Conforti–Cornuéjols refined greedy factor (1 − e^{−c})/c; → 1 as c → 0.
  double refined_greedy_factor = 1.0 - 1.0 / 2.718281828459045;
};

// Measures curvature over `sample_size` elements of `ground` (all of them
// when sample_size == 0 or >= |ground|). Cost: |ground| adds to build
// f(V∖·) marginals' baseline plus 2 evaluations per sampled element.
// `proto` must be a fresh oracle. Elements with f({x}) == 0 are skipped.
// Throws std::invalid_argument on an empty ground set.
CurvatureEstimate estimate_curvature(const SubmodularOracle& proto,
                                     std::span<const ElementId> ground,
                                     std::size_t sample_size = 0,
                                     std::uint64_t seed = 1);

// The refined factor for a given curvature (exposed for tests/reports).
double refined_greedy_factor(double curvature);

}  // namespace bds
