// Algorithm registry: every selection algorithm in the library behind one
// uniform name → runner mapping, so tools (the CLI, sweep harnesses,
// notebooks) can enumerate and invoke them without hard-coding the zoo.
// Each runner adapts the algorithm's own config struct from the common
// parameter block; algorithm-specific knobs beyond it keep their defaults.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/distributed.h"
#include "core/runtime_options.h"
#include "objectives/submodular.h"

namespace bds {

// The common algorithm-parameter block every registered runner understands.
// Execution-environment knobs (threads, seed, faults, tracing) live in
// RuntimeOptions and are passed alongside.
struct AlgorithmParams {
  std::size_t k = 10;
  std::size_t rounds = 1;         // where meaningful
  std::size_t output_items = 0;   // bicriteria modes; 0 → k
  double epsilon = 0.1;           // where meaningful
  std::size_t machines = 0;       // 0 → algorithm default
};

struct AlgorithmSpec {
  std::string name;         // stable CLI-facing identifier
  std::string description;  // one line, shown in --help style listings
  bool distributed = true;  // false for centralized/streaming references
  std::function<DistributedResult(const SubmodularOracle&,
                                  std::span<const ElementId>,
                                  const AlgorithmParams&,
                                  const RuntimeOptions&)>
      run;
};

// All registered algorithms, in presentation order. The vector is built
// once and never mutated (thread-safe to read).
const std::vector<AlgorithmSpec>& algorithm_registry();

// Lookup by name; nullptr when unknown.
const AlgorithmSpec* find_algorithm(std::string_view name);

// Throwing lookup: returns the spec or throws std::invalid_argument whose
// message lists every registered name, so callers (CLI, serving layer) get
// the discoverable error for free.
const AlgorithmSpec& require_algorithm(std::string_view name);

// All registered names, for diagnostics ("unknown algorithm X, try: ...").
std::vector<std::string> algorithm_names();

// The objective side of the registry: one entry per objective family the
// library ships, so tools can enumerate them and the serving layer can
// check cachability without hard-coding a list.
struct ObjectiveSpec {
  std::string name;         // stable CLI-facing identifier
  std::string description;  // one line, shown in --help style listings
  // True when evaluations are a pure deterministic function of the
  // committed set — clones replay to bitwise-equal values — which is what
  // the summary cache (serve/cache.h) needs to certify prefix answers.
  // Every in-tree objective qualifies (sampled oracles freeze their sample
  // at construction); see docs/EXTENDING.md before flipping this on a new
  // objective.
  bool cache_safe = true;
};

const std::vector<ObjectiveSpec>& objective_registry();
const ObjectiveSpec* find_objective(std::string_view name);
// Throwing lookup listing the known objective names.
const ObjectiveSpec& require_objective(std::string_view name);
std::vector<std::string> objective_names();

// The uniform front door: what one invocation returned, regardless of
// which algorithm ran. `stats.trace` carries the structured round spans
// (dist/trace.h); centralized references leave most of it empty.
struct RunResult {
  std::string algorithm;            // registry name that ran
  std::vector<ElementId> solution;  // selection order, across rounds
  double value = 0.0;
  dist::ExecutionStats stats;
  std::vector<RoundTrace> rounds;

  std::size_t size() const noexcept { return solution.size(); }
};

// Looks up `algorithm` and runs it with the given runtime and parameters.
// Throws std::invalid_argument listing the known names when the algorithm
// is unknown. This is the intended entry point for tools: one call, one
// result shape, runtime knobs (threads / seed / faults / tracing) in one
// place.
RunResult run_distributed(std::string_view algorithm,
                          const SubmodularOracle& oracle,
                          std::span<const ElementId> ground,
                          const RuntimeOptions& runtime,
                          const AlgorithmParams& params = {});

}  // namespace bds
