// Algorithm registry: every selection algorithm in the library behind one
// uniform name → runner mapping, so tools (the CLI, sweep harnesses,
// notebooks) can enumerate and invoke them without hard-coding the zoo.
// Each runner adapts the algorithm's own config struct from the common
// parameter block; algorithm-specific knobs beyond it keep their defaults.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/distributed.h"
#include "objectives/submodular.h"

namespace bds {

// The common parameter block every registered runner understands.
struct AlgorithmParams {
  std::size_t k = 10;
  std::size_t rounds = 1;         // where meaningful
  std::size_t output_items = 0;   // bicriteria modes; 0 → k
  double epsilon = 0.1;           // where meaningful
  std::size_t machines = 0;       // 0 → algorithm default
  std::uint64_t seed = 1;
};

struct AlgorithmSpec {
  std::string name;         // stable CLI-facing identifier
  std::string description;  // one line, shown in --help style listings
  bool distributed = true;  // false for centralized/streaming references
  std::function<DistributedResult(const SubmodularOracle&,
                                  std::span<const ElementId>,
                                  const AlgorithmParams&)>
      run;
};

// All registered algorithms, in presentation order. The vector is built
// once and never mutated (thread-safe to read).
const std::vector<AlgorithmSpec>& algorithm_registry();

// Lookup by name; nullptr when unknown.
const AlgorithmSpec* find_algorithm(std::string_view name);

// All registered names, for diagnostics ("unknown algorithm X, try: ...").
std::vector<std::string> algorithm_names();

}  // namespace bds
