// Declarative round programs — the one place a distributed round is defined.
//
// Every distributed algorithm in this repository (the BicriteriaGreedy
// variants and all Table-1 baselines, plus the matroid extension) is an
// instance of the same MapReduce skeleton:
//
//   scatter -> local greedy -> gather -> coordinator filter [-> merge]
//
// Instead of hand-copying that loop per algorithm, each algorithm *declares*
// its rounds as `RoundSpec`s inside a `RoundProgram`, and the shared
// `RoundEngine` (dist/engine.h) executes them: it owns the coordinator
// oracle, the cluster simulator, the partitioning RNG, the stats/trace
// emission and — because there is now exactly one loop — checkpoint/resume
// of long multi-round runs.
//
// The vocabulary below covers the whole zoo:
//   * partition   — round-robin / uniform / multiplicity-C placement;
//   * worker      — a greedy selector (Algorithm 2 and friends) or a
//                   threshold-τ accept pass (GreedyScaling), or a fully
//                   custom WorkerFn (matroid machines);
//   * filter      — lazy-greedy-k over the gathered union, adopt-S1-then-
//                   greedy (HybridAlg), threshold-accept (GreedyScaling),
//                   pool-accumulate (ParallelAlg), or a custom callable
//                   (matroid coordinator);
//   * merge       — plain (coordinator solution wins) or best-of-machines
//                   (GreeDi-family output rule), optionally with a final
//                   lazy-greedy filter over the accumulated pool.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/distributed.h"
#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

// How the ground set is scattered across the program's machines.
enum class PartitionStrategy : std::uint8_t {
  kRoundRobin,    // deterministic, order-based (GreeDi)
  kUniform,       // each item to one uniformly random machine
  kMultiplicity,  // each item to C distinct random machines (§2.2)
};

// Worker spec: each machine greedily extends the coordinator's S over its
// shard with the configured selector, returning its first `budget` picks.
struct SelectorWorkerSpec {
  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;
  bool stop_when_no_gain = true;
  std::size_t budget = 0;
};

// Worker spec: each machine keeps shard items whose marginal gain on top of
// S ∪ (local picks) clears `threshold`, up to `budget` of them
// (GreedyScaling's per-round pass).
struct ThresholdWorkerSpec {
  double threshold = 0.0;
  std::size_t budget = 0;
};

// Escape hatch for workers outside the two canonical shapes (the matroid
// machines run constrained greedy on a fresh oracle). The callable must
// satisfy dist::Cluster::WorkerFn's contract: deterministic in
// (machine, shard), safe to invoke concurrently and more than once.
using CustomWorkerFn = dist::Cluster::WorkerFn;

using WorkerSpec =
    std::variant<SelectorWorkerSpec, ThresholdWorkerSpec, CustomWorkerFn>;

// Coordinator filter spec: lazy greedy `budget` over the union of delivered
// summaries, appended to the running solution.
struct GreedyFilterSpec {
  std::size_t budget = 0;
};

// HybridAlg (Thm 2.4): adopt machine 1's summary wholesale (zero-gain
// members may be dropped: for monotone f they can never gain later), then
// lazy greedy `budget` over the union of the remaining machines' summaries.
struct AdoptThenGreedyFilterSpec {
  std::size_t budget = 0;
};

// GreedyScaling: re-check each gathered item against `threshold` on the
// coordinator oracle, keeping accepted items until the total solution
// reaches `solution_cap`.
struct ThresholdFilterSpec {
  double threshold = 0.0;
  std::size_t solution_cap = 0;
};

// ParallelAlg: no per-round selection — gathered summaries join the
// engine's accumulated candidate pool (deduplicated, canonical order),
// which later rounds may broadcast and the merge stage may filter.
struct PoolFilterSpec {};

// Escape hatch for coordinator filters outside the canonical shapes (the
// matroid coordinator runs constrained lazy greedy). Receives the
// coordinator oracle and the concatenated delivered summaries; returns the
// picks, which the engine appends to the running solution.
struct CustomFilterSpec {
  std::function<std::vector<ElementId>(SubmodularOracle& central,
                                       std::span<const ElementId> pool)>
      filter;
};

using FilterSpec =
    std::variant<GreedyFilterSpec, AdoptThenGreedyFilterSpec,
                 ThresholdFilterSpec, PoolFilterSpec, CustomFilterSpec>;

// One declared round. `alpha`, `machine_budget` and `central_budget` are
// recorded verbatim into the round's RoundTrace.
struct RoundSpec {
  PartitionStrategy partition = PartitionStrategy::kUniform;
  std::size_t multiplicity = 1;  // kMultiplicity placements per item
  // Append the engine's accumulated candidate pool to every shard before
  // the workers run (ParallelAlg's broadcast; metered as scatter traffic).
  bool broadcast_pool = false;

  WorkerSpec worker;
  FilterSpec filter;

  double alpha = 0.0;
  std::size_t machine_budget = 0;
  std::size_t central_budget = 0;
};

// How the engine produces the final solution once the rounds end.
enum class MergeRule : std::uint8_t {
  kPlain,           // the coordinator's accumulated solution is the output
  kBestOfMachines,  // GreeDi-family: best single machine summary may win
};

struct MergeSpec {
  MergeRule rule = MergeRule::kPlain;
  // Under kBestOfMachines each delivered summary's first `probe_prefix`
  // items are evaluated from scratch against the *fresh* prototype oracle
  // (these probes are metered into RoundStats::merge_evals).
  std::size_t probe_prefix = std::numeric_limits<std::size_t>::max();
  // When > 0, a final lazy greedy of this budget runs over the accumulated
  // candidate pool after the last round (ParallelAlg's deferred filter);
  // its evaluations fold into the last round's central stage.
  std::size_t final_filter_budget = 0;
};

// Snapshot of coordinator progress the engine exposes to the program's
// round generator (and records into checkpoints).
struct EngineProgress {
  std::size_t round = 0;          // rounds completed so far
  std::size_t solution_size = 0;  // |S| accumulated across rounds
  double value = 0.0;             // coordinator oracle's f(S)
  std::size_t pool_size = 0;      // accumulated candidate pool (deduped)
};

// A whole algorithm, declaratively: fixed execution parameters plus a
// generator that declares round r given the progress so far (returning
// std::nullopt ends the run). Generators must be *pure* in the progress
// snapshot — deriving per-round state (budgets, thresholds) from it rather
// than from captured mutable state — so a resumed run re-derives the exact
// same round sequence from a checkpoint.
struct RoundProgram {
  std::string id;          // stable name, stamped into checkpoints
  std::size_t machines = 1;
  bool stop_when_no_gain = true;  // coordinator greedy-filter option

  MergeSpec merge;

  // Independent machine oracles (see MachineOracleFactory); consulted by
  // selector workers only. Must outlive the engine run.
  const MachineOracleFactory* oracle_factory = nullptr;

  // Coordinator oracle override; the default builds
  // detail::make_central_oracle(proto, incremental_gains). The matroid
  // driver overrides it with a plain clone.
  std::function<std::unique_ptr<SubmodularOracle>(const SubmodularOracle&,
                                                  bool incremental_gains)>
      central_factory;

  std::function<std::optional<RoundSpec>(const EngineProgress&)> next_round;
};

// ---------------------------------------------------------------------------
// Checkpoint/resume

// Versioned snapshot of the engine's coordinator state after a completed
// round: enough to continue a killed multi-round run to the exact same
// output (solution ids, candidate pool, best-of-machines tracking, RNG
// stream position, accumulated stats/trace). The worker side needs nothing:
// shards are re-derived from the restored RNG and faults are a pure hash of
// (round, machine, attempt).
struct Checkpoint {
  // Format version; bumped on any serialized-field change. Loaders reject
  // versions they do not understand (no silent forward compatibility).
  // v3: RoundSpan/AttemptSpan transport + wire-byte fields.
  static constexpr std::uint32_t kVersion = 3;

  std::string program_id;   // RoundProgram::id of the producing run
  std::uint64_t seed = 0;   // RuntimeOptions::seed of the producing run
  std::size_t rounds_completed = 0;
  std::array<std::uint64_t, 4> rng_state{};  // partition RNG position

  std::vector<ElementId> solution;  // coordinator S, selection order
  // The coordinator oracle's exact committed set — a superset of `solution`
  // when a filter adopts zero-gain members — replayed on resume so the
  // restored oracle state matches the killed run's bit-for-bit.
  std::vector<ElementId> coordinator_set;
  std::vector<ElementId> pool;      // accumulated candidate pool
  std::vector<ElementId> best_machine;  // best-of-machines tracking
  double best_machine_value = -1.0;

  dist::ExecutionStats stats;       // completed rounds' stats + trace spans
  std::vector<RoundTrace> rounds;   // completed rounds' RoundTraces

  // Text serialization with bit-exact doubles (hex-encoded IEEE-754 bits).
  // deserialize throws std::invalid_argument on malformed input or a
  // version mismatch.
  std::string serialize() const;
  static Checkpoint deserialize(std::string_view text);
};

// Invoked after every completed round with the fresh snapshot.
using CheckpointSink = std::function<void(const Checkpoint&)>;

// The paper's default machine count (footnote 3), shared by every
// spec-builder: balance the per-machine shard (n/m items) against the
// coordinator's gather (m·k' items), m = ⌈√(n / k')⌉ for per-machine
// budget k'. Returns 1 for an empty ground set.
std::size_t default_machine_count(std::size_t ground_size,
                                  std::size_t machine_budget);

}  // namespace bds
