// bds::RuntimeOptions — the one place for execution-environment knobs.
//
// Every distributed algorithm config embeds these execution-environment
// knobs (threads, seed, worker_oracle, ...) as a `runtime` member — one
// vocabulary for "how a run executes" shared by every algorithm, as opposed
// to the per-algorithm "what to compute" fields beside it.
//
// RuntimeOptions also carries the simulator's fault-injection and tracing
// controls (dist/faults.h, dist/trace.h): a FaultPlan + RetryPolicy pair
// and an optional per-round TraceSink, forwarded into dist::ClusterOptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/bound_heap.h"
#include "core/distributed.h"
#include "core/round_spec.h"

namespace bds {

// Which ClusterTransport backend (dist/transport.h) executes worker
// attempts. Selections and eval accounting are bit-identical across
// backends for every declarative (non-custom) worker; kProcess makes the
// paper's machines literal OS processes speaking the dist/wire.h protocol.
enum class TransportKind : std::uint8_t {
  kInProcess = 0,  // default: workers run as closures on the host pool
  kProcess,        // one forked bds_worker per logical machine
};

// Provisioning for TransportKind::kProcess. Worker processes hold no
// coordinator memory, so the corpus must be re-loadable machine-locally:
// `corpus_spec` is a serialized data::CorpusSpec (data/corpus.h) each
// worker materializes its prototype oracle from at handshake.
struct ProcessTransportOptions {
  // Worker binary path; empty resolves $BDS_WORKER, then "bds_worker"
  // next to the current executable.
  std::string worker_binary;
  std::string corpus_spec;
};

struct RuntimeOptions {
  // --- host execution ---
  std::size_t threads = 0;   // simulator host threads; 0 = hardware default
  std::uint64_t seed = 1;    // partitioning / stochastic-selector seed

  // --- algorithm-independent executor knobs (all bit-identical choices) ---
  WorkerOracleMode worker_oracle = WorkerOracleMode::kShardView;
  bool incremental_gains = false;  // coordinator O(1) coverage gains
  bool parallel_central = false;   // parallel coordinator batch evaluation
  // Harness preference: when the dataset comes from a file, mmap it
  // zero-copy (data/io.h map_*) instead of heap loading it. Selections are
  // bit-identical either way; this only changes where the CSR bytes live.
  // Consumed by the drivers that own dataset loading (bds_cli,
  // bench_support.h) — the executor itself never touches dataset files.
  bool mmap_datasets = false;
  // Cross-query lazy-bound warm start (core/bound_heap.h): when set — the
  // serve layer attaches one cache per corpus — engine runs seed their
  // bound store's prefix-0 fallback from it and harvest newly computed
  // singleton gains f({x}) back into it. Purely an eval-count optimization;
  // selections are bit-identical with or without it, and it is ignored
  // entirely under BDS_LAZY=off.
  std::shared_ptr<detail::SingletonBoundCache> singleton_bounds;

  // --- execution backend (dist/transport.h) ---
  TransportKind transport = TransportKind::kInProcess;
  ProcessTransportOptions process;  // consulted only under kProcess

  // --- fault injection / retry / tracing (dist/faults.h, dist/trace.h) ---
  dist::FaultPlan faults;    // all-healthy default == fault-free executor
  dist::RetryPolicy retry;
  dist::TraceSink trace_sink;

  // --- checkpoint / resume (core/round_spec.h, dist/engine.h) ---
  // Invoked by the round engine after every completed round with a
  // serializable snapshot of coordinator state.
  CheckpointSink checkpoint_sink;
  // Continue a prior run from this snapshot instead of starting fresh. The
  // engine validates the program id and seed, restores coordinator state
  // and stats, and re-derives the remaining rounds — producing exactly the
  // uninterrupted run's output. Drivers that compose engine runs (adaptive)
  // clear this for their inner rounds.
  std::shared_ptr<const Checkpoint> resume_from;
  // Testing/ops hook: stop after this many rounds have completed (1-based;
  // 0 = run to completion). The run returns its partial result — final
  // merge stages are skipped — after the round's checkpoint is emitted.
  std::size_t halt_after_round = 0;

  // The subset the cluster simulator consumes.
  dist::ClusterOptions cluster_options() const {
    return dist::ClusterOptions{threads, faults, retry, trace_sink, nullptr};
  }
};

}  // namespace bds
