// bds::RuntimeOptions — the one place for execution-environment knobs.
//
// Every distributed algorithm config used to carry its own copy of the
// runtime flags (threads, seed, worker_oracle, ...). They are now grouped
// here and embedded as a `runtime` member in each config; the old flat
// fields remain as deprecated thin forwarders for one release (a non-default
// flat value overrides the corresponding runtime field, so existing call
// sites keep working unchanged).
//
// RuntimeOptions also carries the simulator's fault-injection and tracing
// controls (dist/faults.h, dist/trace.h): a FaultPlan + RetryPolicy pair
// and an optional per-round TraceSink, forwarded into dist::ClusterOptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/bound_heap.h"
#include "core/distributed.h"
#include "core/round_spec.h"

namespace bds {

struct RuntimeOptions {
  // --- host execution ---
  std::size_t threads = 0;   // simulator host threads; 0 = hardware default
  std::uint64_t seed = 1;    // partitioning / stochastic-selector seed

  // --- algorithm-independent executor knobs (all bit-identical choices) ---
  WorkerOracleMode worker_oracle = WorkerOracleMode::kShardView;
  bool incremental_gains = false;  // coordinator O(1) coverage gains
  bool parallel_central = false;   // parallel coordinator batch evaluation
  // Harness preference: when the dataset comes from a file, mmap it
  // zero-copy (data/io.h map_*) instead of heap loading it. Selections are
  // bit-identical either way; this only changes where the CSR bytes live.
  // Consumed by the drivers that own dataset loading (bds_cli,
  // bench_support.h) — the executor itself never touches dataset files.
  bool mmap_datasets = false;
  // Cross-query lazy-bound warm start (core/bound_heap.h): when set — the
  // serve layer attaches one cache per corpus — engine runs seed their
  // bound store's prefix-0 fallback from it and harvest newly computed
  // singleton gains f({x}) back into it. Purely an eval-count optimization;
  // selections are bit-identical with or without it, and it is ignored
  // entirely under BDS_LAZY=off.
  std::shared_ptr<detail::SingletonBoundCache> singleton_bounds;

  // --- fault injection / retry / tracing (dist/faults.h, dist/trace.h) ---
  dist::FaultPlan faults;    // all-healthy default == fault-free executor
  dist::RetryPolicy retry;
  dist::TraceSink trace_sink;

  // --- checkpoint / resume (core/round_spec.h, dist/engine.h) ---
  // Invoked by the round engine after every completed round with a
  // serializable snapshot of coordinator state.
  CheckpointSink checkpoint_sink;
  // Continue a prior run from this snapshot instead of starting fresh. The
  // engine validates the program id and seed, restores coordinator state
  // and stats, and re-derives the remaining rounds — producing exactly the
  // uninterrupted run's output. Drivers that compose engine runs (adaptive)
  // clear this for their inner rounds.
  std::shared_ptr<const Checkpoint> resume_from;
  // Testing/ops hook: stop after this many rounds have completed (1-based;
  // 0 = run to completion). The run returns its partial result — final
  // merge stages are skipped — after the round's checkpoint is emitted.
  std::size_t halt_after_round = 0;

  // The subset the cluster simulator consumes.
  dist::ClusterOptions cluster_options() const {
    return dist::ClusterOptions{threads, faults, retry, trace_sink};
  }
};

namespace detail {

// Merges a config's deprecated flat runtime fields into its `runtime`
// member. A flat field that was moved off its default wins over the
// corresponding RuntimeOptions field (callers predating `runtime` keep
// their behaviour); flat defaults defer to `runtime`. Constrained with
// `requires` per field so configs carrying different flat subsets (e.g.
// GreedyScalingConfig has no parallel_central) share this one helper.
template <typename Config>
RuntimeOptions resolve_runtime(const Config& config) {
  RuntimeOptions rt = config.runtime;
  if constexpr (requires { config.threads; }) {
    if (config.threads != 0) rt.threads = config.threads;
  }
  if constexpr (requires { config.seed; }) {
    if (config.seed != 1) rt.seed = config.seed;
  }
  if constexpr (requires { config.worker_oracle; }) {
    if (config.worker_oracle != WorkerOracleMode::kShardView) {
      rt.worker_oracle = config.worker_oracle;
    }
  }
  if constexpr (requires { config.incremental_gains; }) {
    if (config.incremental_gains) rt.incremental_gains = true;
  }
  if constexpr (requires { config.parallel_central; }) {
    if (config.parallel_central) rt.parallel_central = true;
  }
  return rt;
}

}  // namespace detail
}  // namespace bds
