// SieveStreaming (Badanidiyuru, Mirzasoleiman, Karbasi, Krause, KDD'14 —
// the paper's reference [4]): single-pass streaming submodular maximization
// under a cardinality constraint.
//
// The paper's related-work section positions streaming algorithms as the
// other extreme of the scalability spectrum (one pass, O(k·log(k)/ε)
// memory, 1/2−ε guarantee, no distribution at all); having it in the
// library completes the comparison surface: centralized greedy vs
// streaming vs the distributed bicriteria family.
//
// Algorithm: maintain a sieve per threshold τ ∈ {(1+ε)^i} bracketing the
// running estimate m = max singleton value; sieve τ accepts a streamed
// element when its marginal gain is ≥ (τ/2 − f(S_τ)) / (k − |S_τ|).
// Output the best sieve.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

struct SieveStreamingConfig {
  std::size_t k = 10;
  double epsilon = 0.1;  // threshold granularity; guarantee is 1/2 − ε
};

struct SieveStreamingResult {
  std::vector<ElementId> solution;  // best sieve's picks, arrival order
  double value = 0.0;
  std::size_t sieves_alive = 0;      // thresholds maintained at the end
  std::uint64_t oracle_evals = 0;    // total across sieves
  std::uint64_t peak_memory_items = 0;  // Σ sieve sizes at peak
};

// Consumes `stream` in order (one pass). `proto` must be a fresh oracle.
// Throws std::invalid_argument on k == 0 or epsilon outside (0, 1).
SieveStreamingResult sieve_streaming(const SubmodularOracle& proto,
                                     std::span<const ElementId> stream,
                                     const SieveStreamingConfig& config);

}  // namespace bds
