#include "core/upper_bound.h"

#include <algorithm>
#include <functional>
#include <vector>

namespace bds {

double solution_upper_bound(const SubmodularOracle& proto,
                            std::span<const ElementId> solution,
                            std::span<const ElementId> ground,
                            std::size_t k) {
  const auto oracle = seeded_clone(proto, solution);
  const double base = oracle->value();

  // Top-k marginals via a size-k min-heap over the ground set.
  std::vector<double> top;
  top.reserve(k + 1);
  for (const ElementId x : ground) {
    const double g = oracle->gain(x);
    if (g <= 0.0) continue;
    if (top.size() < k) {
      top.push_back(g);
      std::push_heap(top.begin(), top.end(), std::greater<>());
    } else if (!top.empty() && g > top.front()) {
      std::pop_heap(top.begin(), top.end(), std::greater<>());
      top.back() = g;
      std::push_heap(top.begin(), top.end(), std::greater<>());
    }
  }
  double bound = base;
  for (const double g : top) bound += g;
  return std::min(bound, proto.max_value());
}

double best_upper_bound(const SubmodularOracle& proto,
                        std::span<const std::vector<ElementId>> solutions,
                        std::span<const ElementId> ground, std::size_t k) {
  double best = proto.max_value();
  for (const auto& s : solutions) {
    best = std::min(best, solution_upper_bound(proto, s, ground, k));
  }
  return best;
}

}  // namespace bds
