#include "core/brute_force.h"

#include <algorithm>
#include <stdexcept>

namespace bds {

namespace {

// C(n, k) with saturation at max+1 to keep the guard cheap.
std::uint64_t binomial_capped(std::uint64_t n, std::uint64_t k,
                              std::uint64_t cap) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    if (result > cap) return cap + 1;
    result = result * (n - k + i) / i;
  }
  return result;
}

}  // namespace

BruteForceResult brute_force_opt(const SubmodularOracle& proto,
                                 std::span<const ElementId> ground,
                                 std::size_t k, std::uint64_t max_subsets) {
  const std::size_t n = ground.size();
  k = std::min(k, n);
  if (binomial_capped(n, k, max_subsets) > max_subsets) {
    throw std::invalid_argument("brute_force_opt: instance too large");
  }

  BruteForceResult result;
  if (k == 0) return result;

  // Lexicographic combination enumeration over indices into `ground`.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;

  std::vector<ElementId> subset(k);
  for (;;) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = ground[idx[i]];
    const double v = evaluate_set(proto, subset);
    ++result.subsets_evaluated;
    if (result.best.empty() || v > result.value) {
      result.value = v;
      result.best = subset;
    }

    // Advance to the next combination: find the rightmost index that can
    // still move, bump it, and reset everything to its right.
    std::size_t i = k;
    while (i > 0 && idx[i - 1] == (i - 1) + n - k) --i;
    if (i == 0) return result;
    ++idx[i - 1];
    for (std::size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace bds
