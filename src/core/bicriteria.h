// BicriteriaGreedy (Algorithm 1) and its two refinements — the paper's
// contribution.
//
// Common round structure, repeated r times with coordinator set S carried
// across rounds:
//   1. scatter the ground set over m machines (multiplicity 1 or C);
//   2. each machine i greedily extends a copy of S over its shard T_i,
//      returning its first `machine_budget` picks S_i (Algorithm 2);
//   3. the coordinator greedily filters ∪S_i into S under `central_budget`.
//
// Modes (Theorems 2.2-2.4; α = 3/ε^(1/r)):
//   kTheory        — Alg. 1 verbatim: multiplicity 1, machine budget αk,
//                    central budget (α²ln²α + lnα)k per round.
//   kMultiplicity  — §2.2: each item lands on C = ⌈α·lnα⌉ machines; central
//                    budget shrinks to (α·ln²α + lnα)k.
//   kHybrid        — Thm 2.4: multiplicity C; coordinator adopts S₁ whole
//                    and then greedily adds k·lnα from ∪_{i≥2} S_i, for
//                    (α + lnα)k items per round.
//   kPractical     — the experiments' configuration (§4.1): output exactly
//                    `output_items` total, ⌊out/r⌋ per round (remainder in
//                    the last), machine budget = central budget = k',
//                    m = ⌈√(n/k')⌉, multiplicity 1.
#pragma once

#include <cstdint>
#include <span>

#include "core/distributed.h"
#include "core/runtime_options.h"
#include "objectives/submodular.h"

namespace bds {

enum class BicriteriaMode { kTheory, kMultiplicity, kHybrid, kPractical };

struct BicriteriaConfig {
  BicriteriaMode mode = BicriteriaMode::kPractical;

  std::size_t k = 10;      // target cardinality (the K the guarantee is for)
  std::size_t rounds = 1;  // r >= 1
  double epsilon = 0.1;    // theory modes: drives α = 3/ε^(1/r)

  // kPractical: total output size (>= k); 0 means "k".
  std::size_t output_items = 0;

  // Machine count m; 0 selects the paper's default ⌈√(n/k')⌉ where k' is
  // the machine budget (footnote 3), raised to ⌈α·lnα⌉ in theory modes so
  // the analysis' requirement m >= α·lnα holds.
  std::size_t machines = 0;

  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;  // sample multiplier for kStochasticGreedy

  // Stop adding once marginal gains hit zero (recommended; Algorithm 1 as
  // written always exhausts its budgets).
  bool stop_when_no_gain = true;

  // Machines estimating on independent samples (see MachineOracleFactory).
  MachineOracleFactory machine_oracle_factory;

  // Execution-environment knobs: threads, seed, worker oracle construction,
  // incremental/parallel coordinator evaluation, fault injection, tracing.
  RuntimeOptions runtime;
};

// Parameters Algorithm 1 derives from a config and ground-set size; exposed
// for tests and for printing experiment headers.
struct BicriteriaPlan {
  double alpha = 0.0;
  std::size_t machines = 0;
  std::size_t multiplicity = 1;
  std::size_t machine_budget = 0;
  std::size_t central_budget = 0;   // per round
  std::size_t rounds = 1;
  // Worst-case total output size bound from the relevant theorem.
  std::size_t output_bound = 0;
};

// Resolves the plan for a given ground-set size. Throws
// std::invalid_argument on k == 0, rounds == 0, or epsilon outside (0, 1).
BicriteriaPlan plan_bicriteria(const BicriteriaConfig& config,
                               std::size_t ground_size);

// The declarative round program behind bicriteria_greedy (dist/engine.h):
// one RoundSpec per round — multiplicity partition, selector worker with the
// plan's machine budget, greedy (or hybrid adopt-then-greedy) filter with
// the plan's central budget, practical-mode remainder folded into the last
// round. `config` must outlive the returned program (the generator captures
// it by reference).
RoundProgram make_bicriteria_program(const BicriteriaConfig& config,
                                     const BicriteriaPlan& plan);

// Runs the configured variant. `proto` must be a fresh (empty-set) oracle;
// `ground` lists the selectable element ids (normally the whole ground set).
DistributedResult bicriteria_greedy(const SubmodularOracle& proto,
                                    std::span<const ElementId> ground,
                                    const BicriteriaConfig& config);

}  // namespace bds
