#include "core/bound_heap.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bds::detail {

namespace {

// -1 = no override; 0 / 1 = forced off / on (ForcedLazy).
std::atomic<int> g_forced_lazy{-1};

bool parse_env_lazy() {
  const char* env = std::getenv("BDS_LAZY");
  if (env == nullptr || *env == '\0') return true;
  if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) return true;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "false") == 0) {
    return false;
  }
  std::fprintf(stderr, "bds: unknown BDS_LAZY value '%s', using 'on'\n", env);
  return true;
}

}  // namespace

bool lazy_enabled() noexcept {
  const int forced = g_forced_lazy.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = parse_env_lazy();
  return from_env;
}

ForcedLazy::ForcedLazy(bool enabled) noexcept
    : saved_(g_forced_lazy.exchange(enabled ? 1 : 0,
                                    std::memory_order_relaxed)) {}

ForcedLazy::~ForcedLazy() {
  g_forced_lazy.store(saved_, std::memory_order_relaxed);
}

void SingletonBoundCache::record(ElementId x, double gain) {
  const auto i = static_cast<std::size_t>(x);
  std::lock_guard<std::mutex> lk(mu_);
  if (i >= valid_.size()) {
    valid_.resize(i + 1, 0);
    gains_.resize(i + 1, 0.0);
  }
  if (valid_[i]) return;  // first write wins (all writers agree bitwise)
  valid_[i] = 1;
  gains_[i] = gain;
  ++count_;
}

bool SingletonBoundCache::lookup(ElementId x, double* gain) const {
  const auto i = static_cast<std::size_t>(x);
  std::lock_guard<std::mutex> lk(mu_);
  if (i >= valid_.size() || !valid_[i]) return false;
  *gain = gains_[i];
  return true;
}

std::size_t SingletonBoundCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

void BoundStore::reset(std::size_t ground_size) {
  entries_.assign(ground_size, BoundEntry{});
  valid_.assign(ground_size, 0);
  count_ = 0;
}

void BoundStore::record(ElementId x, double bound, std::size_t prefix) {
  const auto i = static_cast<std::size_t>(x);
  if (i >= valid_.size()) return;  // out-of-ground id: nothing to certify
  if (valid_[i] && entries_[i].prefix > prefix) return;  // keep tighter
  if (!valid_[i]) {
    valid_[i] = 1;
    ++count_;
  }
  entries_[i] = BoundEntry{bound, prefix};
  if (prefix == 0 && singletons_ != nullptr) singletons_->record(x, bound);
}

bool BoundStore::lookup(ElementId x, BoundEntry* out) const {
  const auto i = static_cast<std::size_t>(x);
  if (i < valid_.size() && valid_[i]) {
    *out = entries_[i];
    return true;
  }
  if (singletons_ != nullptr) {
    double gain = 0.0;
    if (singletons_->lookup(x, &gain)) {
      *out = BoundEntry{gain, 0};
      return true;
    }
  }
  return false;
}

void BoundStore::clear() {
  valid_.assign(valid_.size(), 0);
  count_ = 0;
}

}  // namespace bds::detail
