// Matroid-constrained submodular maximization — the natural extension of
// the paper's framework: its own references ([5] Barbosa et al., [21]
// Mirrokni–Zadimoghaddam) analyze randomized composable core-sets under
// matroid constraints, where greedy gives 1/2 and distributed
// greedy-of-greedies stays constant-factor.
//
// A constraint object is a *stateful* independence tracker mirroring the
// stateful oracle design: `feasible(x)` asks whether the current selection
// plus x stays independent, `add(x)` commits. Provided matroids:
//
//   * CardinalityConstraint — |S| <= k (the paper's setting);
//   * PartitionMatroid     — ground set partitioned into groups, at most
//                            cap_g picks from group g (e.g. "at most 2
//                            exemplars per topic");
//   * LaminarBound         — cardinality cap on top of a partition matroid
//                            (a 2-level laminar matroid), handy for
//                            "diverse top-k" selections.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/distributed.h"
#include "core/runtime_options.h"
#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

class MatroidConstraint {
 public:
  virtual ~MatroidConstraint() = default;

  // True iff the current selection plus x is independent. x already
  // selected reports false (a set may not pick twice).
  virtual bool feasible(ElementId x) const = 0;

  // Commits x. Precondition: feasible(x). Throws std::logic_error if
  // violated (defensive; all call sites check first).
  virtual void add(ElementId x) = 0;

  // Upper bound on any independent set's size (the matroid rank).
  virtual std::size_t rank() const noexcept = 0;

  // Number of elements committed so far.
  virtual std::size_t size() const noexcept = 0;

  // Fresh copy with identical committed state.
  virtual std::unique_ptr<MatroidConstraint> clone() const = 0;
};

// |S| <= k.
class CardinalityConstraint final : public MatroidConstraint {
 public:
  explicit CardinalityConstraint(std::size_t k);

  bool feasible(ElementId x) const override;
  void add(ElementId x) override;
  std::size_t rank() const noexcept override { return k_; }
  std::size_t size() const noexcept override { return chosen_.size(); }
  std::unique_ptr<MatroidConstraint> clone() const override;

 private:
  std::size_t k_;
  std::vector<ElementId> chosen_;
};

// Ground set partitioned by `group[x]`; at most capacities[g] picks from
// group g.
class PartitionMatroid final : public MatroidConstraint {
 public:
  // group.size() is the ground-set size; every group id must index into
  // capacities (throws std::invalid_argument otherwise).
  PartitionMatroid(std::vector<std::uint32_t> group,
                   std::vector<std::size_t> capacities);

  bool feasible(ElementId x) const override;
  void add(ElementId x) override;
  std::size_t rank() const noexcept override { return rank_; }
  std::size_t size() const noexcept override { return total_; }
  std::unique_ptr<MatroidConstraint> clone() const override;

  std::uint32_t group_of(ElementId x) const { return (*group_)[x]; }

 private:
  std::shared_ptr<const std::vector<std::uint32_t>> group_;
  std::shared_ptr<const std::vector<std::size_t>> capacities_;
  std::vector<std::size_t> used_;    // per group
  std::vector<std::uint8_t> taken_;  // per element
  std::size_t total_ = 0;
  std::size_t rank_ = 0;
};

// Partition matroid intersected with a global cardinality cap — a 2-level
// laminar matroid (still a matroid, so greedy keeps its 1/2 guarantee).
class LaminarBound final : public MatroidConstraint {
 public:
  LaminarBound(PartitionMatroid partition, std::size_t global_cap);

  bool feasible(ElementId x) const override;
  void add(ElementId x) override;
  std::size_t rank() const noexcept override;
  std::size_t size() const noexcept override { return inner_.size(); }
  std::unique_ptr<MatroidConstraint> clone() const override;

 private:
  PartitionMatroid inner_;
  std::size_t global_cap_;
};

// ------------------------------------------------------------ algorithms

struct ConstrainedGreedyResult {
  std::vector<ElementId> picks;
  std::vector<double> gains;
  double gained = 0.0;

  std::size_t size() const noexcept { return picks.size(); }
};

// Greedy under a matroid: repeatedly add the feasible candidate of maximum
// marginal gain. 1/2-approximation for monotone submodular f (Fisher,
// Nemhauser, Wolsey '78). Extends the oracle's current set; mutates
// `constraint` in place.
ConstrainedGreedyResult greedy_matroid(SubmodularOracle& oracle,
                                       std::span<const ElementId> candidates,
                                       MatroidConstraint& constraint,
                                       bool stop_when_no_gain = true);

// Lazy variant (same output, fewer evaluations): stale upper bounds are
// valid under matroids exactly as under cardinality.
ConstrainedGreedyResult lazy_greedy_matroid(
    SubmodularOracle& oracle, std::span<const ElementId> candidates,
    MatroidConstraint& constraint, bool stop_when_no_gain = true);

// Distributed greedy-of-greedies under a matroid (the RandGreeDi-style
// extension of [5]): random partition, each machine runs constrained greedy
// to full rank, coordinator runs constrained greedy over the union, output
// the better of the coordinator's solution and the best machine's.
struct MatroidDistributedConfig {
  std::size_t machines = 0;  // 0 → ⌈√(n/rank)⌉
  RuntimeOptions runtime;    // see core/runtime_options.h
};

DistributedResult rand_greedi_matroid(
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    const MatroidConstraint& constraint,
    const MatroidDistributedConfig& config);

}  // namespace bds
