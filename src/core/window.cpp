#include "core/window.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "core/streaming.h"

namespace bds {

SlidingWindowSieve::SlidingWindowSieve(const SubmodularOracle& proto,
                                       WindowConfig config)
    : config_(config) {
  if (config_.window == 0) {
    throw std::invalid_argument("SlidingWindowSieve: window must be > 0");
  }
  if (config_.k == 0) {
    throw std::invalid_argument("SlidingWindowSieve: k must be > 0");
  }
  if (config_.sieve_epsilon <= 0.0 || config_.sieve_epsilon >= 1.0 ||
      config_.decay_epsilon <= 0.0 || config_.decay_epsilon >= 1.0) {
    throw std::invalid_argument(
        "SlidingWindowSieve: epsilons must be in (0, 1)");
  }
  proto_ = proto.clone();
  probe_ = proto.clone();
  window_vec_.reserve(config_.window);
}

SlidingWindowSieve::~SlidingWindowSieve() = default;

bool SlidingWindowSieve::push(ElementId x) {
  ++stats_.arrivals;
  bool solution_member_expired = false;
  if (window_vec_.size() == config_.window) {
    const ElementId oldest = window_vec_.front();
    window_vec_.erase(window_vec_.begin());
    ++stats_.expirations;
    solution_member_expired =
        std::find(solution_.begin(), solution_.end(), oldest) !=
        solution_.end();
  }
  window_vec_.push_back(x);

  // One singleton evaluation keeps the bound valid: the new window's
  // optimum can exceed the old one's by at most f({x}).
  const double singleton = probe_->gain(x);
  ++stats_.oracle_evals;
  if (singleton > 0.0) upper_bound_ += singleton;
  upper_bound_ = std::min(upper_bound_, proto_->max_value());

  if (solution_member_expired ||
      value_ < (1.0 - config_.decay_epsilon) * upper_bound_) {
    resolve();
    return true;
  }
  ++stats_.kept;
  return false;
}

void SlidingWindowSieve::resolve() {
  SieveStreamingConfig cfg;
  cfg.k = config_.k;
  cfg.epsilon = config_.sieve_epsilon;
  const SieveStreamingResult sieved =
      sieve_streaming(*proto_, window_vec_, cfg);
  solution_ = sieved.solution;
  stats_.oracle_evals += sieved.oracle_evals;
  ++stats_.resolves;

  // Exact certificate over the current window (core/upper_bound math), so
  // the per-tick singleton slack resets instead of compounding.
  const auto probe = seeded_clone(*proto_, solution_);
  value_ = probe->value();
  std::vector<double> top;
  top.reserve(config_.k + 1);
  for (const ElementId w : window_vec_) {
    const double g = probe->gain(w);
    if (g <= 0.0) continue;
    if (top.size() < config_.k) {
      top.push_back(g);
      std::push_heap(top.begin(), top.end(), std::greater<>());
    } else if (!top.empty() && g > top.front()) {
      std::pop_heap(top.begin(), top.end(), std::greater<>());
      top.back() = g;
      std::push_heap(top.begin(), top.end(), std::greater<>());
    }
  }
  double bound = value_;
  for (const double g : top) bound += g;
  upper_bound_ = std::min(bound, proto_->max_value());
  stats_.oracle_evals += probe->evals();
}

}  // namespace bds
