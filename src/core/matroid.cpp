#include "core/matroid.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <stdexcept>

#include "core/greedy.h"
#include "core/round_spec.h"
#include "dist/cluster.h"
#include "dist/engine.h"

namespace bds {

// ------------------------------------------------------------ constraints

CardinalityConstraint::CardinalityConstraint(std::size_t k) : k_(k) {}

bool CardinalityConstraint::feasible(ElementId x) const {
  if (chosen_.size() >= k_) return false;
  return std::find(chosen_.begin(), chosen_.end(), x) == chosen_.end();
}

void CardinalityConstraint::add(ElementId x) {
  if (!feasible(x)) {
    throw std::logic_error("CardinalityConstraint: infeasible add");
  }
  chosen_.push_back(x);
}

std::unique_ptr<MatroidConstraint> CardinalityConstraint::clone() const {
  return std::make_unique<CardinalityConstraint>(*this);
}

PartitionMatroid::PartitionMatroid(std::vector<std::uint32_t> group,
                                   std::vector<std::size_t> capacities)
    : taken_(group.size(), 0) {
  for (const std::uint32_t g : group) {
    if (g >= capacities.size()) {
      throw std::invalid_argument(
          "PartitionMatroid: group id beyond capacities");
    }
  }
  used_.assign(capacities.size(), 0);
  for (const std::size_t cap : capacities) rank_ += cap;
  group_ = std::make_shared<const std::vector<std::uint32_t>>(
      std::move(group));
  capacities_ = std::make_shared<const std::vector<std::size_t>>(
      std::move(capacities));
}

bool PartitionMatroid::feasible(ElementId x) const {
  if (x >= taken_.size() || taken_[x]) return false;
  const std::uint32_t g = (*group_)[x];
  return used_[g] < (*capacities_)[g];
}

void PartitionMatroid::add(ElementId x) {
  if (!feasible(x)) {
    throw std::logic_error("PartitionMatroid: infeasible add");
  }
  taken_[x] = 1;
  ++used_[(*group_)[x]];
  ++total_;
}

std::unique_ptr<MatroidConstraint> PartitionMatroid::clone() const {
  return std::make_unique<PartitionMatroid>(*this);
}

LaminarBound::LaminarBound(PartitionMatroid partition, std::size_t global_cap)
    : inner_(std::move(partition)), global_cap_(global_cap) {}

bool LaminarBound::feasible(ElementId x) const {
  return inner_.size() < global_cap_ && inner_.feasible(x);
}

void LaminarBound::add(ElementId x) {
  if (inner_.size() >= global_cap_) {
    throw std::logic_error("LaminarBound: global cap reached");
  }
  inner_.add(x);
}

std::size_t LaminarBound::rank() const noexcept {
  return std::min(inner_.rank(), global_cap_);
}

std::unique_ptr<MatroidConstraint> LaminarBound::clone() const {
  return std::make_unique<LaminarBound>(*this);
}

// ------------------------------------------------------------- algorithms

ConstrainedGreedyResult greedy_matroid(SubmodularOracle& oracle,
                                       std::span<const ElementId> candidates,
                                       MatroidConstraint& constraint,
                                       bool stop_when_no_gain) {
  const std::vector<ElementId> pool = unique_candidates(candidates);
  std::vector<bool> taken(pool.size(), false);

  ConstrainedGreedyResult result;
  for (;;) {
    double best_gain = 0.0;
    std::size_t best_idx = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i] || !constraint.feasible(pool[i])) continue;
      const double g = oracle.gain(pool[i]);
      if (best_idx == pool.size() || g > best_gain) {
        best_gain = g;
        best_idx = i;
      }
    }
    if (best_idx == pool.size()) break;  // nothing feasible left
    if (stop_when_no_gain && best_gain <= 0.0) break;

    taken[best_idx] = true;
    constraint.add(pool[best_idx]);
    const double realized = oracle.add(pool[best_idx]);
    result.picks.push_back(pool[best_idx]);
    result.gains.push_back(realized);
    result.gained += realized;
  }
  return result;
}

ConstrainedGreedyResult lazy_greedy_matroid(
    SubmodularOracle& oracle, std::span<const ElementId> candidates,
    MatroidConstraint& constraint, bool stop_when_no_gain) {
  const std::vector<ElementId> pool = unique_candidates(candidates);

  struct Entry {
    double gain;
    std::size_t idx;
    std::size_t stamp;
  };
  struct Less {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.gain != b.gain) return a.gain < b.gain;
      return a.idx > b.idx;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Less> heap;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    heap.push(Entry{oracle.gain(pool[i]), i, 0});
  }

  ConstrainedGreedyResult result;
  std::size_t iter = 0;
  while (!heap.empty()) {
    // Discard infeasible tops (their group/cap filled up); refresh stale
    // gains; select when the top is both feasible and current.
    Entry top = heap.top();
    heap.pop();
    if (!constraint.feasible(pool[top.idx])) continue;
    if (top.stamp != iter) {
      top.gain = oracle.gain(pool[top.idx]);
      top.stamp = iter;
      heap.push(top);
      continue;
    }
    if (stop_when_no_gain && top.gain <= 0.0) break;

    constraint.add(pool[top.idx]);
    const double realized = oracle.add(pool[top.idx]);
    result.picks.push_back(pool[top.idx]);
    result.gains.push_back(realized);
    result.gained += realized;
    ++iter;
  }
  return result;
}

DistributedResult rand_greedi_matroid(
    const SubmodularOracle& proto, std::span<const ElementId> ground,
    const MatroidConstraint& constraint,
    const MatroidDistributedConfig& config) {
  const std::size_t rank = std::max<std::size_t>(1, constraint.rank());
  const std::size_t machines = config.machines != 0
                                   ? config.machines
                                   : default_machine_count(ground.size(), rank);

  // The matroid variant sits outside the two canonical worker/filter shapes
  // (machines run constrained greedy on a *fresh* oracle, the coordinator
  // runs constrained lazy greedy), so it uses the engine's custom hooks.
  RoundProgram program;
  program.id = "rand-greedi-matroid";
  program.machines = machines;
  program.merge.rule = MergeRule::kBestOfMachines;
  program.central_factory = [](const SubmodularOracle& p, bool) {
    return p.clone();  // no incremental-gains upgrade under a matroid
  };
  program.next_round =
      [&proto, &constraint, rank](const EngineProgress& progress)
      -> std::optional<RoundSpec> {
    if (progress.round >= 1) return std::nullopt;
    RoundSpec spec;
    spec.partition = PartitionStrategy::kUniform;
    spec.worker = CustomWorkerFn(
        [&proto, &constraint](std::size_t, std::span<const ElementId> shard)
            -> dist::WorkerOutput {
          auto oracle = proto.clone();
          auto local = constraint.clone();
          const auto selection = lazy_greedy_matroid(*oracle, shard, *local);
          dist::WorkerOutput output;
          output.summary = selection.picks;
          output.oracle_evals = oracle->evals();
          return output;
        });
    spec.filter = CustomFilterSpec{
        [&constraint](SubmodularOracle& central,
                      std::span<const ElementId> pool) {
          auto central_constraint = constraint.clone();
          return lazy_greedy_matroid(central, pool, *central_constraint)
              .picks;
        }};
    spec.machine_budget = rank;
    spec.central_budget = rank;
    return spec;
  };
  return run_round_program(proto, ground, program,
                           config.runtime);
}

}  // namespace bds
