#include "core/maintain.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "core/upper_bound.h"

namespace bds {

CertifiedMaintainer::CertifiedMaintainer(
    std::shared_ptr<data::DynamicCorpus> corpus, MaintainConfig config)
    : corpus_(std::move(corpus)), config_(std::move(config)) {
  if (!corpus_) {
    throw std::invalid_argument("CertifiedMaintainer: null corpus");
  }
  if (config_.epsilon <= 0.0 || config_.epsilon >= 1.0) {
    throw std::invalid_argument(
        "CertifiedMaintainer: epsilon must be in (0, 1)");
  }
  oracle_ =
      data::make_dynamic_oracle(*corpus_, config_.objective, config_.oracle);
  resolve();
  // The constructor's solve is the baseline, not a maintained batch.
  stats_ = MaintainStats{};
}

MaintainDecision CertifiedMaintainer::insert(std::vector<std::uint32_t> items) {
  data::Mutation m;
  m.kind = data::MutationKind::kInsert;
  m.id = static_cast<ElementId>(corpus_->size());
  m.items = std::move(items);
  return apply(std::span<const data::Mutation>(&m, 1));
}

MaintainDecision CertifiedMaintainer::erase(ElementId id) {
  data::Mutation m;
  m.kind = data::MutationKind::kErase;
  m.id = id;
  return apply(std::span<const data::Mutation>(&m, 1));
}

MaintainDecision CertifiedMaintainer::apply(
    std::span<const data::Mutation> batch) {
  const std::uint64_t before = corpus_->epoch();
  bool solution_member_erased = false;
  for (const data::Mutation& m : batch) {
    if (m.kind == data::MutationKind::kErase &&
        std::find(solution_.begin(), solution_.end(), m.id) !=
            solution_.end()) {
      solution_member_erased = true;
    }
    corpus_->apply(m);
  }
  sync_oracle(before);
  data::require_epoch(*oracle_, *corpus_);

  ++stats_.batches;
  stats_.mutations += batch.size();

  // An erased solution member makes the cached answer unaddressable — no
  // certificate can save it. Otherwise one O(|ground|) pass decides.
  if (!solution_member_erased && recertify() >= 1.0 - config_.epsilon) {
    ++stats_.kept;
    return MaintainDecision::kKept;
  }
  resolve();
  ++stats_.resolved;
  return MaintainDecision::kResolved;
}

void CertifiedMaintainer::sync_oracle(std::uint64_t from_epoch) {
  if (oracle_->supports_dynamic_updates()) {
    const auto& log = corpus_->log();
    for (std::uint64_t e = from_epoch; e < log.size(); ++e) {
      const data::Mutation& m = log[e];
      if (m.kind == data::MutationKind::kInsert) {
        oracle_->apply_insert(m.id, m.items, e + 1);
      } else {
        oracle_->apply_erase(m.id, e + 1);
      }
    }
    return;
  }
  oracle_ =
      data::make_dynamic_oracle(*corpus_, config_.objective, config_.oracle);
  ++stats_.oracle_rebuilds;
}

double CertifiedMaintainer::recertify() {
  const std::vector<ElementId> ground = corpus_->live_ground();
  // Same math as core/upper_bound's solution_upper_bound, done inline so
  // f(S) (needed for the ratio) and the eval cost are both observable.
  const auto probe = seeded_clone(*oracle_, solution_);
  value_ = probe->value();
  std::vector<double> top;
  top.reserve(config_.k + 1);
  for (const ElementId x : ground) {
    const double g = probe->gain(x);
    if (g <= 0.0) continue;
    if (top.size() < config_.k) {
      top.push_back(g);
      std::push_heap(top.begin(), top.end(), std::greater<>());
    } else if (!top.empty() && g > top.front()) {
      std::pop_heap(top.begin(), top.end(), std::greater<>());
      top.back() = g;
      std::push_heap(top.begin(), top.end(), std::greater<>());
    }
  }
  double bound = value_;
  for (const double g : top) bound += g;
  upper_bound_ = std::min(bound, oracle_->max_value());
  stats_.certificate_evals += probe->evals();
  ratio_ = upper_bound_ > 0.0 ? value_ / upper_bound_ : 1.0;
  return ratio_;
}

void CertifiedMaintainer::resolve() {
  const std::vector<ElementId> ground = corpus_->live_ground();
  AdaptiveConfig cfg;
  cfg.k = config_.k;
  cfg.items_per_round = config_.items_per_round;
  cfg.target_ratio = 1.0 - config_.epsilon;
  cfg.max_rounds = config_.max_rounds;
  cfg.machines = config_.machines;
  cfg.selector = config_.selector;
  cfg.runtime = config_.runtime;
  const AdaptiveResult solved = adaptive_bicriteria(*oracle_, ground, cfg);
  solution_ = solved.result.solution;
  value_ = solved.result.value;
  upper_bound_ = solved.upper_bound;
  ratio_ = solved.certified_ratio;
  stats_.resolve_evals += solved.result.stats.total_evals();
}

}  // namespace bds
