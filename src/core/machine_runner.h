// Internal glue shared by the distributed algorithms: builds the worker
// functor a dist::Cluster round executes on every logical machine, and
// dispatches on the configured local selector. Not part of the public API
// surface (subject to change), but exposed for white-box tests.
#pragma once

#include <cstdint>
#include <span>

#include "core/distributed.h"
#include "core/greedy.h"
#include "dist/cluster.h"
#include "objectives/submodular.h"
#include "util/rng.h"

namespace bds::detail {

// Runs the selector named by `selector` on `oracle` over `candidates`.
GreedyResult run_selector(SubmodularOracle& oracle,
                          std::span<const ElementId> candidates,
                          std::size_t budget, MachineSelector selector,
                          double stochastic_c, bool stop_when_no_gain,
                          util::Rng& rng);

struct MachineWorkerConfig {
  MachineSelector selector = MachineSelector::kLazyGreedy;
  double stochastic_c = 3.0;
  bool stop_when_no_gain = true;
  std::size_t budget = 0;
  std::uint64_t seed = 1;   // base seed; per-machine streams are derived
  std::size_t round = 0;    // round index, mixed into per-machine seeds
  // Coordinator oracle whose state (the accumulated S) machines start from.
  const SubmodularOracle* central = nullptr;
  // Optional factory for independent machine oracles; when set, the fresh
  // oracle is seeded with central->current_set() before selection.
  const MachineOracleFactory* factory = nullptr;
  // Clone vs shard-compacted view (ignored when `factory` is set). Both are
  // bit-identical over the shard; see WorkerOracleMode.
  WorkerOracleMode worker_oracle = WorkerOracleMode::kShardView;
  // Cross-round lazy-bound store (core/bound_heap.h). When set and the
  // selector is kLazyGreedy (and no factory), the worker seeds its heap
  // from these certificates and exports the exact gains it computed at the
  // round's shared committed prefix via WorkerOutput::bound_ids/gains.
  // Workers only *read* the store — it must stay unmodified for the whole
  // round so retried attempts remain pure in (machine, shard). Selections
  // are bit-identical with or without it.
  const BoundStore* bounds = nullptr;
};

// Builds the worker functor for one cluster round. The returned callable is
// invoked concurrently — possibly more than once per machine when the
// cluster retries a faulted attempt, which is safe because it is a pure
// function of (machine, shard) — and it only reads the coordinator oracle
// (clone or shard view) and the config, both of which must outlive the
// round.
dist::Cluster::WorkerFn make_machine_worker(const MachineWorkerConfig& config);

// GreedyScaling's per-round worker: keep shard items whose marginal gain on
// top of S ∪ (local picks) clears `threshold`, up to `budget` of them.
struct ThresholdWorkerConfig {
  double threshold = 0.0;
  std::size_t budget = 0;
  const SubmodularOracle* central = nullptr;
  WorkerOracleMode worker_oracle = WorkerOracleMode::kShardView;
};

// Same contract as make_machine_worker: pure in (machine, shard), safe to
// invoke concurrently and repeatedly. Shared by the in-process engine and
// bds_worker so both transports execute the identical accept loop.
dist::Cluster::WorkerFn make_threshold_worker(
    const ThresholdWorkerConfig& config);

// Coordinator oracle for a distributed run: a clone of `proto`, upgraded to
// inverted-index incremental gains (objectives/coverage_incremental.h) when
// requested and the objective supports it (unweighted coverage). The
// upgrade is bit-identical — same gains, same evaluation accounting — so it
// never changes selections, only the filter's cost per query.
std::unique_ptr<SubmodularOracle> make_central_oracle(
    const SubmodularOracle& proto, bool incremental_gains);

// Deterministic per-(seed, round, machine) RNG stream.
util::Rng machine_rng(std::uint64_t seed, std::size_t round,
                      std::size_t machine) noexcept;

}  // namespace bds::detail
