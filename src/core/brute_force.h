// Exact optimum by exhaustive enumeration — test-scale instances only
// (C(n, k) subsets, each evaluated in O(k) oracle calls).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

struct BruteForceResult {
  std::vector<ElementId> best;
  double value = 0.0;
  std::uint64_t subsets_evaluated = 0;
};

// Maximizes f over all subsets of `ground` with size exactly min(k, |ground|)
// (monotonicity makes "exactly" equal to "at most"). `proto` must be a fresh
// oracle prototype. Throws std::invalid_argument when the enumeration would
// exceed `max_subsets` (default 2^22), as a guard against accidental use on
// real instances.
BruteForceResult brute_force_opt(const SubmodularOracle& proto,
                                 std::span<const ElementId> ground,
                                 std::size_t k,
                                 std::uint64_t max_subsets = 1ULL << 22);

}  // namespace bds
