// Batched marginal-gain evaluation with optional parallelism — the single
// entry point the hot paths (greedy's per-pass scan, lazy_greedy's heap
// build, stochastic_greedy's sample scan, the coordinator filters) use to
// turn candidate spans into gain arrays.
//
// Serial path: one SubmodularOracle::gain_batch call, which dispatches to
// the objective's cache-friendly batched kernel (or the scalar fallback).
//
// Parallel path (opt-in via BatchEvalOptions::pool): the span is chunked
// over a dist::ThreadPool. This is sound because do_gain/do_gain_batch are
// const and data-race-free against each other (the oracle contract in
// objectives/submodular.h); each chunk writes a disjoint slice of the
// output, and every element's gain is computed independently, so the
// results — and any selection driven by them — are bit-identical to the
// serial path regardless of chunking. Evaluation accounting happens once
// after the join: a batch of B elements charges exactly B evals to the
// owning oracle, keeping ExecutionStats comparable across all paths.
#pragma once

#include <cstddef>
#include <span>

#include "dist/thread_pool.h"
#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

struct BatchEvalOptions {
  // Pool to chunk large batches over; nullptr (the default) stays serial.
  dist::ThreadPool* pool = nullptr;
  // Elements per parallel chunk. Large enough that the per-chunk queue
  // round-trip is noise next to the oracle work.
  std::size_t grain = 512;
  // Batches smaller than this run serially even when a pool is set — the
  // fork/join overhead would exceed the oracle work.
  std::size_t min_parallel = 2048;
};

// Evaluates gains[i] = Δ(xs[i], S) for the oracle's current S and charges
// exactly xs.size() evaluations to `oracle`, on whichever path the options
// select. Precondition: gains.size() >= xs.size().
void evaluate_gains(SubmodularOracle& oracle, std::span<const ElementId> xs,
                    std::span<double> gains,
                    const BatchEvalOptions& options = {});

}  // namespace bds
