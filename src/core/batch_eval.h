// Batched marginal-gain evaluation with optional parallelism — the single
// entry point the hot paths (greedy's per-pass scan, lazy_greedy's heap
// build, stochastic_greedy's sample scan, the coordinator filters) use to
// turn candidate spans into gain arrays.
//
// Serial path: one SubmodularOracle::gain_batch call, which dispatches to
// the objective's cache-friendly batched kernel (or the scalar fallback).
//
// Parallel path (opt-in via BatchEvalOptions::pool): the oracle is first
// offered the whole batch via gain_batch_parallel_unaccounted — oracles
// whose single evaluation is a big scan (exemplar clustering: O(n·dim))
// split their *internal* cost dimension over the pool with a deterministic
// chunk-ordered reduction, which scales where candidate chunking cannot
// (per-candidate latency is untouched by chunking, and the batched kernel
// already amortizes the point stream across candidates). If the oracle
// declines — no internal split, or too little work — the span is chunked
// over the dist::ThreadPool instead. Both forms are sound because
// do_gain/do_gain_batch(_parallel) are const and data-race-free (the
// oracle contract in objectives/submodular.h); chunks write disjoint
// output slices (candidate chunking) or merge partials in fixed chunk
// order (internal split), so the results — and any selection driven by
// them — are bit-identical to the serial path regardless of chunking or
// thread count. Evaluation accounting happens once after the join: a batch
// of B elements charges exactly B evals to the owning oracle, keeping
// ExecutionStats comparable across all paths.
#pragma once

#include <cstddef>
#include <span>

#include "dist/thread_pool.h"
#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

struct BatchEvalOptions {
  // Pool to chunk large batches over; nullptr (the default) stays serial.
  dist::ThreadPool* pool = nullptr;
  // Elements per parallel chunk. Large enough that the per-chunk queue
  // round-trip is noise next to the oracle work.
  std::size_t grain = 512;
  // Batches smaller than this run serially even when a pool is set — the
  // fork/join overhead would exceed the oracle work.
  std::size_t min_parallel = 2048;
};

// Evaluates gains[i] = Δ(xs[i], S) for the oracle's current S and charges
// exactly xs.size() evaluations to `oracle`, on whichever path the options
// select. Precondition: gains.size() >= xs.size().
void evaluate_gains(SubmodularOracle& oracle, std::span<const ElementId> xs,
                    std::span<double> gains,
                    const BatchEvalOptions& options = {});

}  // namespace bds
