#include "core/knapsack.h"

#include <stdexcept>

#include "core/greedy.h"

namespace bds {

namespace {

void validate(const SubmodularOracle& oracle, std::span<const double> costs,
              double budget) {
  if (costs.size() != oracle.ground_size()) {
    throw std::invalid_argument("knapsack: one cost per ground element");
  }
  for (const double c : costs) {
    if (c <= 0.0) {
      throw std::invalid_argument("knapsack: costs must be positive");
    }
  }
  if (budget <= 0.0) {
    throw std::invalid_argument("knapsack: budget must be positive");
  }
}

// Both greedy rules share this loop; `by_ratio` switches the scoring.
KnapsackResult budgeted_loop(SubmodularOracle& oracle,
                             std::span<const ElementId> candidates,
                             std::span<const double> costs, double budget,
                             bool by_ratio) {
  validate(oracle, costs, budget);
  const std::vector<ElementId> pool = unique_candidates(candidates);
  std::vector<bool> taken(pool.size(), false);

  KnapsackResult result;
  for (;;) {
    const double remaining = budget - result.cost;
    double best_score = 0.0;
    double best_gain = 0.0;
    std::size_t best_idx = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i] || costs[pool[i]] > remaining) continue;
      const double g = oracle.gain(pool[i]);
      const double score = by_ratio ? g / costs[pool[i]] : g;
      if (best_idx == pool.size() || score > best_score) {
        best_score = score;
        best_gain = g;
        best_idx = i;
      }
    }
    if (best_idx == pool.size() || best_gain <= 0.0) break;

    taken[best_idx] = true;
    const ElementId x = pool[best_idx];
    const double realized = oracle.add(x);
    result.picks.push_back(x);
    result.gains.push_back(realized);
    result.gained += realized;
    result.cost += costs[x];
  }
  return result;
}

}  // namespace

KnapsackResult cost_benefit_greedy(SubmodularOracle& oracle,
                                   std::span<const ElementId> candidates,
                                   std::span<const double> costs,
                                   double budget) {
  return budgeted_loop(oracle, candidates, costs, budget, /*by_ratio=*/true);
}

KnapsackResult plain_value_greedy(SubmodularOracle& oracle,
                                  std::span<const ElementId> candidates,
                                  std::span<const double> costs,
                                  double budget) {
  return budgeted_loop(oracle, candidates, costs, budget, /*by_ratio=*/false);
}

KnapsackResult knapsack_greedy(const SubmodularOracle& proto,
                               std::span<const ElementId> candidates,
                               std::span<const double> costs, double budget) {
  auto ratio_oracle = proto.clone();
  KnapsackResult ratio_run =
      cost_benefit_greedy(*ratio_oracle, candidates, costs, budget);
  auto value_oracle = proto.clone();
  KnapsackResult value_run =
      plain_value_greedy(*value_oracle, candidates, costs, budget);
  return ratio_run.gained >= value_run.gained ? std::move(ratio_run)
                                              : std::move(value_run);
}

}  // namespace bds
