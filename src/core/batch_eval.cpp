#include "core/batch_eval.h"

#include <algorithm>

namespace bds {

void evaluate_gains(SubmodularOracle& oracle, std::span<const ElementId> xs,
                    std::span<double> gains, const BatchEvalOptions& options) {
  // Oracles with a heavy per-evaluation scan split it internally (exemplar
  // partitions its cost points, not the candidates) — consulted before the
  // min_parallel gate because even a small candidate span can carry hours
  // of scan work. The oracle declines when the batch is too light.
  if (options.pool != nullptr && options.pool->size() > 1 &&
      oracle.gain_batch_parallel_unaccounted(xs, gains, *options.pool)) {
    oracle.charge_evals(xs.size());
    return;
  }
  if (options.pool == nullptr || options.pool->size() <= 1 ||
      xs.size() < options.min_parallel) {
    oracle.gain_batch(xs, gains);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t chunks = (xs.size() + grain - 1) / grain;
  // One task per chunk; each runs the batched kernel on its disjoint slice.
  options.pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t count = std::min(grain, xs.size() - begin);
    oracle.gain_batch_unaccounted(xs.subspan(begin, count),
                                  gains.subspan(begin, count));
  });
  // Work accounting is aggregated after the join: B elements = B evals,
  // exactly as the serial path charges.
  oracle.charge_evals(xs.size());
}

}  // namespace bds
