#include "core/machine_runner.h"

#include <cassert>

#include "objectives/coverage_incremental.h"

namespace bds::detail {

GreedyResult run_selector(SubmodularOracle& oracle,
                          std::span<const ElementId> candidates,
                          std::size_t budget, MachineSelector selector,
                          double stochastic_c, bool stop_when_no_gain,
                          util::Rng& rng) {
  switch (selector) {
    case MachineSelector::kGreedy:
      return greedy(oracle, candidates, budget, {stop_when_no_gain});
    case MachineSelector::kLazyGreedy:
      return lazy_greedy(oracle, candidates, budget, {stop_when_no_gain});
    case MachineSelector::kStochasticGreedy: {
      StochasticGreedyOptions options;
      options.c = stochastic_c;
      options.stop_when_no_gain = stop_when_no_gain;
      return stochastic_greedy(oracle, candidates, budget, rng, options);
    }
  }
  assert(false && "unknown MachineSelector");
  return {};
}

util::Rng machine_rng(std::uint64_t seed, std::size_t round,
                      std::size_t machine) noexcept {
  // Two mixing stages decorrelate (seed, round, machine) triples.
  const std::uint64_t a = util::mix64(seed + 0x9e3779b97f4a7c15ULL * (round + 1));
  return util::Rng(util::mix64(a + machine + 1));
}

dist::Cluster::WorkerFn make_machine_worker(
    const MachineWorkerConfig& config) {
  assert(config.central != nullptr);
  return [config](std::size_t machine,
                  std::span<const ElementId> shard) -> dist::WorkerOutput {
    std::unique_ptr<SubmodularOracle> oracle;
    if (config.factory != nullptr && *config.factory) {
      // Independent machine oracle; replay the coordinator's accumulated S
      // so local gains are marginals on top of it (Algorithm 2's inputs).
      oracle = (*config.factory)(machine);
      for (const ElementId x : config.central->current_set()) oracle->add(x);
    } else if (config.worker_oracle == WorkerOracleMode::kShardView) {
      oracle = config.central->shard_view(shard);
    } else {
      oracle = config.central->clone();
    }
    util::Rng rng = machine_rng(config.seed, config.round, machine);
    dist::WorkerOutput output;
    if (config.bounds != nullptr && config.factory == nullptr &&
        config.selector == MachineSelector::kLazyGreedy) {
      // Bounded lazy worker: warm-start from the engine's cross-round
      // certificates and export the gains computed at the round's shared
      // committed prefix (gains on top of *local* picks are marginals over
      // a set no other machine shares — not valid global bounds).
      const std::size_t base_prefix = oracle->current_set().size();
      LazyGreedyStats stats;
      const GreedyResult selection =
          lazy_greedy_bounded(*oracle, shard, config.budget,
                              {config.stop_when_no_gain}, config.bounds,
                              &stats);
      output.summary = selection.picks;
      output.evals_avoided = stats.evals_avoided;
      for (std::size_t i = 0; i < stats.eval_ids.size(); ++i) {
        if (stats.eval_prefixes[i] != base_prefix) continue;
        output.bound_ids.push_back(stats.eval_ids[i]);
        output.bound_gains.push_back(stats.eval_gains[i]);
      }
    } else {
      const GreedyResult selection =
          run_selector(*oracle, shard, config.budget, config.selector,
                       config.stochastic_c, config.stop_when_no_gain, rng);
      output.summary = selection.picks;
    }
    output.oracle_evals = oracle->evals();
    output.state_bytes = oracle->state_bytes();
    return output;
  };
}

dist::Cluster::WorkerFn make_threshold_worker(
    const ThresholdWorkerConfig& config) {
  assert(config.central != nullptr);
  return [config](std::size_t,
                  std::span<const ElementId> shard) -> dist::WorkerOutput {
    auto oracle = config.worker_oracle == WorkerOracleMode::kShardView
                      ? config.central->shard_view(shard)
                      : config.central->clone();
    dist::WorkerOutput output;
    for (const ElementId x : shard) {
      if (output.summary.size() >= config.budget) break;
      if (oracle->gain(x) >= config.threshold) {
        oracle->add(x);
        output.summary.push_back(x);
      }
    }
    output.oracle_evals = oracle->evals();
    output.state_bytes = oracle->state_bytes();
    return output;
  };
}

std::unique_ptr<SubmodularOracle> make_central_oracle(
    const SubmodularOracle& proto, bool incremental_gains) {
  if (incremental_gains) {
    if (auto upgraded = make_incremental_coverage(proto)) return upgraded;
  }
  return proto.clone();
}

}  // namespace bds::detail
