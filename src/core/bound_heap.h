// Stale-bound pruning substrate for cross-round lazy greedy selection.
//
// By submodularity, a marginal gain Δ(x, S) computed at any committed prefix
// S is a valid *upper bound* on Δ(x, S') for every superset S' ⊇ S. The
// engine's committed solution only grows — across iterations of one greedy
// run, across coordinator filter stages, and across rounds — so every gain
// the system ever evaluates is a reusable certificate. This header holds the
// pieces that carry those certificates around:
//
//  * BoundHeap      — the decrease-only max-heap lazy selection pops from.
//                     Deterministic tie-breaking (bound desc, then pool
//                     index asc) makes lazy selection *bit-identical* to an
//                     eager full re-scan: a stale entry only skips
//                     re-evaluation when its bound already loses to the
//                     current best exact gain, and on equal keys the earlier
//                     candidate pops first — exactly eager's tie rule.
//  * BoundStore     — engine-lifetime, element-keyed bound table. Workers
//                     and coordinator filters deposit the exact gains they
//                     computed (tagged with the committed-prefix length);
//                     later rounds seed their heaps from it instead of
//                     re-scanning. Entries whose prefix equals the current
//                     committed prefix are *exact* (the shard-view /
//                     incremental-oracle bit-identical-gains contract) and
//                     need no refresh at all.
//  * SingletonBoundCache — corpus-lifetime, thread-safe cache of prefix-0
//                     singleton gains f({x}), shared across queries in the
//                     serve layer so a cache-miss query warm-starts from
//                     certified bounds rather than cold scans.
//
// Staleness is keyed by committed-prefix length, not iteration stamps: an
// entry recorded at prefix p is current iff the consumer's committed prefix
// is still p, stale (but valid as an upper bound) for any longer prefix.
//
// The whole substrate is an eval-count optimization only — it never changes
// which elements are selected. BDS_LAZY=off (or a ForcedLazy(false) scope)
// disables cross-round carrying entirely, restoring the per-run Minoux
// accounting that predates the substrate.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <queue>
#include <utility>
#include <vector>

#include "util/element.h"

namespace bds::detail {

// Whether cross-round bound carrying is enabled: BDS_LAZY environment
// variable (default on; "off"/"0"/"false" disable), read once per process,
// overridable in-process with ForcedLazy.
bool lazy_enabled() noexcept;

// RAII in-process override for tests and benchmarks (nests; restores the
// previous override on destruction). Do not construct concurrently with
// engine runs on other threads.
class ForcedLazy {
 public:
  explicit ForcedLazy(bool enabled) noexcept;
  ~ForcedLazy();
  ForcedLazy(const ForcedLazy&) = delete;
  ForcedLazy& operator=(const ForcedLazy&) = delete;

 private:
  int saved_;
};

// One certified bound: an exact marginal gain computed when the committed
// solution had `prefix` elements — an upper bound for any longer prefix.
struct BoundEntry {
  double bound = 0.0;
  std::size_t prefix = 0;
};

// The decrease-only max-heap behind lazy selection. Keys are (bound, pool
// index); ties break toward the smaller index, matching eager greedy's
// earlier-candidate-wins rule, so refresh-until-current reproduces eager's
// argmax bitwise. "Decrease-only" is the submodularity contract on callers:
// a re-pushed entry's bound never exceeds the bound it was popped with.
class BoundHeap {
 public:
  struct Item {
    double bound = 0.0;
    std::size_t idx = 0;     // position in the caller's candidate pool
    std::size_t prefix = 0;  // committed-prefix length of the bound
  };

  // Heapifies a whole batch at once. The comparator is a total order
  // (indices are distinct), so bulk loading pops in exactly the order
  // incremental pushes would.
  void bulk_load(std::vector<Item> items) {
    heap_ = Heap(Less{}, std::move(items));
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  const Item& top() const { return heap_.top(); }
  void push(const Item& item) { heap_.push(item); }

  Item pop() {
    Item item = heap_.top();
    heap_.pop();
    return item;
  }

 private:
  struct Less {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.bound != b.bound) return a.bound < b.bound;
      return a.idx > b.idx;
    }
  };
  using Heap = std::priority_queue<Item, std::vector<Item>, Less>;
  Heap heap_;
};

// Thread-safe corpus-lifetime cache of prefix-0 singleton gains f({x}).
// First write wins; the objective is deterministic (cache_safe), so every
// writer stores the same bits and the "race" is benign by construction.
// Concurrent serve flights over one corpus share a single instance.
class SingletonBoundCache {
 public:
  // Records f({x}) computed on an empty committed set. Lazily sizes the
  // table to hold x.
  void record(ElementId x, double gain);

  // True (and *gain filled) when f({x}) has been recorded.
  bool lookup(ElementId x, double* gain) const;

  // Number of elements with a recorded singleton gain.
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> gains_;
  std::vector<unsigned char> valid_;
  std::size_t count_ = 0;
};

// Element-keyed bound table owned by one engine run. Single-writer: the
// engine records between rounds (workers only *read* it during the map
// phase, which is what keeps retried attempts pure functions of
// (machine, shard)). Keeps the entry with the largest prefix per element —
// by submodularity that is the tightest certificate.
class BoundStore {
 public:
  // Sizes the table for element ids in [0, ground_size) and drops any
  // previous entries. The singleton attachment survives.
  void reset(std::size_t ground_size);

  // Records an exact gain computed at `prefix`. Kept only when no tighter
  // (larger-prefix) entry exists. Prefix-0 gains are also harvested into
  // the attached SingletonBoundCache, if any.
  void record(ElementId x, double bound, std::size_t prefix);

  // Fills *out with the tightest certificate for x: the own entry when one
  // exists, else the attached singleton cache's prefix-0 gain. False when
  // neither knows x.
  bool lookup(ElementId x, BoundEntry* out) const;

  // Drops every own entry (fault/degradation invalidation). The singleton
  // attachment survives — f({x}) does not depend on delivery outcomes.
  void clear();

  // Cross-query warm start: consult (and feed) a corpus-lifetime singleton
  // cache. Pass nullptr to detach.
  void attach_singletons(std::shared_ptr<SingletonBoundCache> cache) {
    singletons_ = std::move(cache);
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept {
    return count_ == 0 &&
           (singletons_ == nullptr || singletons_->size() == 0);
  }

 private:
  std::vector<BoundEntry> entries_;
  std::vector<unsigned char> valid_;
  std::size_t count_ = 0;
  std::shared_ptr<SingletonBoundCache> singletons_;
};

}  // namespace bds::detail
