#include "core/curvature.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace bds {

double refined_greedy_factor(double curvature) {
  curvature = std::clamp(curvature, 0.0, 1.0);
  if (curvature < 1e-12) return 1.0;  // modular: greedy is optimal
  return (1.0 - std::exp(-curvature)) / curvature;
}

CurvatureEstimate estimate_curvature(const SubmodularOracle& proto,
                                     std::span<const ElementId> ground,
                                     std::size_t sample_size,
                                     std::uint64_t seed) {
  if (ground.empty()) {
    throw std::invalid_argument("curvature: empty ground set");
  }
  const std::size_t n = ground.size();
  const bool exact = sample_size == 0 || sample_size >= n;
  std::vector<ElementId> sample;
  if (exact) {
    sample.assign(ground.begin(), ground.end());
  } else {
    util::Rng rng(seed);
    for (const auto idx : rng.sample_without_replacement(n, sample_size)) {
      sample.push_back(ground[idx]);
    }
  }

  // Singleton values in one cheap pass.
  std::vector<double> singleton(sample.size());
  {
    auto probe = proto.clone();
    for (std::size_t i = 0; i < sample.size(); ++i) {
      singleton[i] = probe->gain(sample[i]);
    }
  }

  CurvatureEstimate estimate;
  estimate.exact = exact;
  double min_ratio = 1.0;
  bool any = false;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (singleton[i] <= 0.0) continue;
    // Δ(x, V∖{x}): commit everything except x, then query x. O(n) adds per
    // sampled element — use sampling on large grounds.
    auto rest = proto.clone();
    for (const ElementId y : ground) {
      if (y != sample[i]) rest->add(y);
    }
    const double tail_gain = rest->gain(sample[i]);
    min_ratio = std::min(min_ratio, tail_gain / singleton[i]);
    any = true;
    ++estimate.elements_used;
  }

  estimate.curvature = any ? std::clamp(1.0 - min_ratio, 0.0, 1.0) : 0.0;
  estimate.refined_greedy_factor = refined_greedy_factor(estimate.curvature);
  return estimate;
}

}  // namespace bds
