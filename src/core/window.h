// SlidingWindowSieve — certified sliding-window summarization layered on
// SieveStreaming (ISSUE 10 tentpole, core layer, log-style streams).
//
// A log-style stream only ever cares about the last W arrivals: elements
// age out instead of being erased by id. Re-running the sieve on every
// arrival would cost O(W) evals per tick; the certificate makes most ticks
// free. The maintained invariant mirrors CertifiedMaintainer's:
//
//  * the cached solution S was produced by sieve_streaming over some past
//    window, with a certified upper bound UB on f(OPT_k) of that window;
//  * an arrival x can raise f(OPT_k) of the *current* window by at most its
//    singleton value f({x}) (monotone submodularity), so UB += f({x}) keeps
//    the bound valid at one oracle eval per tick;
//  * a re-solve happens only when a solution member ages out of the window
//    (the answer ceases to describe it) or f(S)/UB decays below 1−ε.
//
// After each re-solve the bound is recomputed exactly (core/upper_bound
// math over the window), so the singleton slack never compounds.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "objectives/submodular.h"
#include "util/element.h"

namespace bds {

struct WindowConfig {
  std::size_t window = 256;   // W: arrivals kept live
  std::size_t k = 10;         // cardinality target of the certificate
  double sieve_epsilon = 0.1;   // SieveStreaming threshold granularity
  double decay_epsilon = 0.2;   // re-solve when f(S)/UB < 1 − decay_epsilon
};

struct WindowStats {
  std::uint64_t arrivals = 0;
  std::uint64_t expirations = 0;
  std::uint64_t resolves = 0;  // sieve re-runs over the window
  std::uint64_t kept = 0;      // ticks absorbed by the certificate
  std::uint64_t oracle_evals = 0;

  double resolve_rate() const noexcept {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(resolves) /
                               static_cast<double>(arrivals);
  }
};

class SlidingWindowSieve {
 public:
  // `proto` must be a fresh (empty-set) oracle over the stream's ground
  // set; it is cloned, never mutated. Throws std::invalid_argument on
  // window == 0, k == 0, or an epsilon outside (0, 1).
  SlidingWindowSieve(const SubmodularOracle& proto, WindowConfig config);
  ~SlidingWindowSieve();

  // Advances the window by one arrival (evicting the oldest element once
  // full) and maintains the certified solution. Returns true when the tick
  // triggered a sieve re-solve.
  bool push(ElementId x);

  std::span<const ElementId> window() const noexcept {
    return std::span<const ElementId>(window_vec_);
  }
  const std::vector<ElementId>& solution() const noexcept { return solution_; }
  double value() const noexcept { return value_; }
  double upper_bound() const noexcept { return upper_bound_; }
  const WindowStats& stats() const noexcept { return stats_; }

 private:
  void resolve();

  WindowConfig config_;
  std::unique_ptr<SubmodularOracle> proto_;  // pristine empty-set clone
  std::unique_ptr<SubmodularOracle> probe_;  // empty-set; singleton gains
  std::vector<ElementId> window_vec_;        // window contents, oldest first
  std::vector<ElementId> solution_;
  double value_ = 0.0;
  double upper_bound_ = 0.0;
  WindowStats stats_;
};

}  // namespace bds
