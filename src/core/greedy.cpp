#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>

namespace bds {

std::vector<ElementId> unique_candidates(
    std::span<const ElementId> candidates) {
  std::vector<ElementId> out(candidates.begin(), candidates.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

GreedyResult greedy(SubmodularOracle& oracle,
                    std::span<const ElementId> candidates, std::size_t budget,
                    const GreedyOptions& options) {
  const std::vector<ElementId> pool = unique_candidates(candidates);
  std::vector<bool> taken(pool.size(), false);

  GreedyResult result;
  const std::size_t rounds = std::min(budget, pool.size());
  result.picks.reserve(rounds);
  result.gains.reserve(rounds);

  // Per-pass scratch: the still-selectable candidates (in pool order) and
  // their batched gains. One gain_batch per pass replaces one virtual call
  // per candidate; eval accounting is unchanged (one per scanned
  // candidate per pass).
  std::vector<ElementId> remaining;
  std::vector<std::size_t> remaining_idx;
  std::vector<double> gains;
  remaining.reserve(pool.size());
  remaining_idx.reserve(pool.size());

  for (std::size_t iter = 0; iter < rounds; ++iter) {
    remaining.clear();
    remaining_idx.clear();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      remaining.push_back(pool[i]);
      remaining_idx.push_back(i);
    }
    gains.resize(remaining.size());
    evaluate_gains(oracle, remaining, gains, options.batch);

    // Argmax in pool order — ties break toward the earlier candidate,
    // exactly as the scalar scan did.
    double best_gain = 0.0;
    std::size_t best = remaining.size();
    for (std::size_t r = 0; r < remaining.size(); ++r) {
      if (best == remaining.size() || gains[r] > best_gain) {
        best_gain = gains[r];
        best = r;
      }
    }
    if (best == remaining.size()) break;  // nothing selectable
    if (options.stop_when_no_gain && best_gain <= 0.0) break;

    const std::size_t best_idx = remaining_idx[best];
    taken[best_idx] = true;
    const double realized = oracle.add(pool[best_idx]);
    result.picks.push_back(pool[best_idx]);
    result.gains.push_back(realized);
    result.gained += realized;
  }
  return result;
}

GreedyResult lazy_greedy(SubmodularOracle& oracle,
                         std::span<const ElementId> candidates,
                         std::size_t budget, const GreedyOptions& options) {
  const std::vector<ElementId> pool = unique_candidates(candidates);

  // Max-heap entries: cached gain, pool index (ascending for ties — matches
  // greedy()'s earlier-candidate-wins rule), and the iteration the gain was
  // computed at.
  struct Entry {
    double gain;
    std::size_t idx;
    std::size_t stamp;
  };
  struct Less {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.gain != b.gain) return a.gain < b.gain;
      return a.idx > b.idx;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Less> heap;

  // First pass: evaluate everything once at stamp 0, in one batch. The
  // comparator is a total order (indices are distinct), so heap-ifying the
  // whole batch pops in exactly the order incremental pushes would.
  {
    std::vector<double> init_gains(pool.size());
    evaluate_gains(oracle, pool, init_gains, options.batch);
    std::vector<Entry> entries;
    entries.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      entries.push_back(Entry{init_gains[i], i, 0});
    }
    heap = std::priority_queue<Entry, std::vector<Entry>, Less>(
        Less{}, std::move(entries));
  }

  GreedyResult result;
  const std::size_t rounds = std::min(budget, pool.size());
  result.picks.reserve(rounds);
  result.gains.reserve(rounds);

  for (std::size_t iter = 0; iter < rounds && !heap.empty(); ++iter) {
    // Refresh until the top entry's gain is current for this iteration.
    // Submodularity guarantees a stale cached gain only over-estimates, so
    // a current top entry is the true argmax.
    // Stamp invariant: an entry is current iff it was computed after the
    // iter-th add, i.e. stamp == iter.
    while (heap.top().stamp != iter) {
      Entry e = heap.top();
      heap.pop();
      e.gain = oracle.gain(pool[e.idx]);
      e.stamp = iter;
      heap.push(e);
    }
    const Entry best = heap.top();
    heap.pop();
    if (options.stop_when_no_gain && best.gain <= 0.0) break;

    const double realized = oracle.add(pool[best.idx]);
    result.picks.push_back(pool[best.idx]);
    result.gains.push_back(realized);
    result.gained += realized;
  }
  return result;
}

GreedyResult stochastic_greedy(SubmodularOracle& oracle,
                               std::span<const ElementId> candidates,
                               std::size_t budget, util::Rng& rng,
                               const StochasticGreedyOptions& options) {
  std::vector<ElementId> pool = unique_candidates(candidates);

  GreedyResult result;
  const std::size_t rounds = std::min(budget, pool.size());
  if (rounds == 0) return result;
  result.picks.reserve(rounds);
  result.gains.reserve(rounds);

  // remaining pool occupies pool[0 .. live).
  std::size_t live = pool.size();
  const auto sample_size = static_cast<std::size_t>(std::max<double>(
      1.0,
      std::ceil(options.c * static_cast<double>(pool.size()) /
                static_cast<double>(rounds))));

  std::vector<double> gains;
  for (std::size_t iter = 0; iter < rounds && live > 0; ++iter) {
    const std::size_t s = std::min(sample_size, live);
    // Partial Fisher-Yates brings a uniform sample into pool[0 .. s).
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t j = i + rng.next_below(live - i);
      std::swap(pool[i], pool[j]);
    }
    gains.resize(s);
    evaluate_gains(oracle, std::span<const ElementId>(pool.data(), s), gains,
                   options.batch);
    double best_gain = 0.0;
    std::size_t best_idx = live;
    for (std::size_t i = 0; i < s; ++i) {
      const double g = gains[i];
      if (best_idx == live || g > best_gain) {
        best_gain = g;
        best_idx = i;
      }
    }
    if (best_idx == live) break;
    if (options.stop_when_no_gain && best_gain <= 0.0) break;

    const double realized = oracle.add(pool[best_idx]);
    result.picks.push_back(pool[best_idx]);
    result.gains.push_back(realized);
    result.gained += realized;
    // Remove the pick from the live range.
    std::swap(pool[best_idx], pool[live - 1]);
    --live;
  }
  return result;
}

GreedyResult random_subset(SubmodularOracle& oracle,
                           std::span<const ElementId> candidates,
                           std::size_t budget, util::Rng& rng) {
  const std::vector<ElementId> pool = unique_candidates(candidates);
  const std::size_t take = std::min(budget, pool.size());

  GreedyResult result;
  result.picks.reserve(take);
  result.gains.reserve(take);
  for (const std::uint64_t i :
       rng.sample_without_replacement(pool.size(), take)) {
    const ElementId x = pool[i];
    const double realized = oracle.add(x);
    result.picks.push_back(x);
    result.gains.push_back(realized);
    result.gained += realized;
  }
  return result;
}

}  // namespace bds
