#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace bds {

std::vector<ElementId> unique_candidates(
    std::span<const ElementId> candidates) {
  std::vector<ElementId> out(candidates.begin(), candidates.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

GreedyResult greedy(SubmodularOracle& oracle,
                    std::span<const ElementId> candidates, std::size_t budget,
                    const GreedyOptions& options) {
  const std::vector<ElementId> pool = unique_candidates(candidates);
  std::vector<bool> taken(pool.size(), false);

  GreedyResult result;
  const std::size_t rounds = std::min(budget, pool.size());
  result.picks.reserve(rounds);
  result.gains.reserve(rounds);

  // Per-pass scratch: the still-selectable candidates (in pool order) and
  // their batched gains. One gain_batch per pass replaces one virtual call
  // per candidate; eval accounting is unchanged (one per scanned
  // candidate per pass).
  std::vector<ElementId> remaining;
  std::vector<std::size_t> remaining_idx;
  std::vector<double> gains;
  remaining.reserve(pool.size());
  remaining_idx.reserve(pool.size());

  for (std::size_t iter = 0; iter < rounds; ++iter) {
    remaining.clear();
    remaining_idx.clear();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      remaining.push_back(pool[i]);
      remaining_idx.push_back(i);
    }
    gains.resize(remaining.size());
    evaluate_gains(oracle, remaining, gains, options.batch);

    // Argmax in pool order — ties break toward the earlier candidate,
    // exactly as the scalar scan did.
    double best_gain = 0.0;
    std::size_t best = remaining.size();
    for (std::size_t r = 0; r < remaining.size(); ++r) {
      if (best == remaining.size() || gains[r] > best_gain) {
        best_gain = gains[r];
        best = r;
      }
    }
    if (best == remaining.size()) break;  // nothing selectable
    if (options.stop_when_no_gain && best_gain <= 0.0) break;

    const std::size_t best_idx = remaining_idx[best];
    taken[best_idx] = true;
    const double realized = oracle.add(pool[best_idx]);
    result.picks.push_back(pool[best_idx]);
    result.gains.push_back(realized);
    result.gained += realized;
  }
  return result;
}

GreedyResult lazy_greedy(SubmodularOracle& oracle,
                         std::span<const ElementId> candidates,
                         std::size_t budget, const GreedyOptions& options) {
  return lazy_greedy_bounded(oracle, candidates, budget, options,
                             /*bounds=*/nullptr, /*stats=*/nullptr);
}

GreedyResult lazy_greedy_bounded(SubmodularOracle& oracle,
                                 std::span<const ElementId> candidates,
                                 std::size_t budget,
                                 const GreedyOptions& options,
                                 const detail::BoundStore* bounds,
                                 LazyGreedyStats* stats) {
  const std::vector<ElementId> pool = unique_candidates(candidates);
  // Staleness clock: an entry is current iff its prefix equals the
  // committed-prefix length base_prefix + |picks so far|. With no store
  // this reduces to the classic per-run iteration stamp.
  const std::size_t base_prefix = oracle.current_set().size();

  std::uint64_t performed = 0;       // gain evaluations (not add() commits)
  std::uint64_t counterfactual = 0;  // what eager greedy() would scan

  const auto record_eval = [&](ElementId x, double gain, std::size_t prefix) {
    if (stats == nullptr) return;
    stats->eval_ids.push_back(x);
    stats->eval_gains.push_back(gain);
    stats->eval_prefixes.push_back(prefix);
  };

  detail::BoundHeap heap;
  {
    // Split the pool into certified candidates (seed the heap at their
    // stale-but-valid bound for free) and uncertified ones, which pay the
    // classic initial scan at base_prefix, in one batch in pool order —
    // with no store every candidate lands here and this is byte-for-byte
    // the pre-substrate lazy_greedy first pass.
    std::vector<detail::BoundHeap::Item> items;
    items.reserve(pool.size());
    std::vector<ElementId> missing;
    std::vector<std::size_t> missing_idx;
    missing.reserve(pool.size());
    missing_idx.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      detail::BoundEntry entry;
      if (bounds != nullptr && bounds->lookup(pool[i], &entry) &&
          entry.prefix <= base_prefix) {
        items.push_back(detail::BoundHeap::Item{entry.bound, i, entry.prefix});
      } else {
        missing.push_back(pool[i]);
        missing_idx.push_back(i);
      }
    }
    std::vector<double> init_gains(missing.size());
    evaluate_gains(oracle, missing, init_gains, options.batch);
    performed += missing.size();
    for (std::size_t m = 0; m < missing.size(); ++m) {
      items.push_back(detail::BoundHeap::Item{init_gains[m], missing_idx[m],
                                      base_prefix});
      record_eval(missing[m], init_gains[m], base_prefix);
    }
    heap.bulk_load(std::move(items));
  }

  GreedyResult result;
  const std::size_t rounds = std::min(budget, pool.size());
  result.picks.reserve(rounds);
  result.gains.reserve(rounds);

  for (std::size_t iter = 0; iter < rounds && !heap.empty(); ++iter) {
    // Eager greedy() entering this iteration would re-scan every
    // still-selectable candidate.
    counterfactual += pool.size() - iter;
    const std::size_t cur_prefix = base_prefix + iter;
    // Refresh until the top entry's bound is current for this prefix.
    // Submodularity guarantees a stale bound only over-estimates, so a
    // current top entry is the true argmax; on equal keys the smaller pool
    // index pops first, reproducing greedy()'s earlier-candidate tie rule.
    while (heap.top().prefix != cur_prefix) {
      detail::BoundHeap::Item e = heap.pop();
      e.bound = oracle.gain(pool[e.idx]);
      e.prefix = cur_prefix;
      ++performed;
      record_eval(pool[e.idx], e.bound, cur_prefix);
      heap.push(e);
    }
    const detail::BoundHeap::Item best = heap.pop();
    if (options.stop_when_no_gain && best.bound <= 0.0) break;

    const double realized = oracle.add(pool[best.idx]);
    result.picks.push_back(pool[best.idx]);
    result.gains.push_back(realized);
    result.gained += realized;
  }

  if (stats != nullptr) {
    stats->evals = performed;
    stats->evals_avoided =
        counterfactual > performed ? counterfactual - performed : 0;
  }
  return result;
}

GreedyResult stochastic_greedy(SubmodularOracle& oracle,
                               std::span<const ElementId> candidates,
                               std::size_t budget, util::Rng& rng,
                               const StochasticGreedyOptions& options) {
  std::vector<ElementId> pool = unique_candidates(candidates);

  GreedyResult result;
  const std::size_t rounds = std::min(budget, pool.size());
  if (rounds == 0) return result;
  result.picks.reserve(rounds);
  result.gains.reserve(rounds);

  // remaining pool occupies pool[0 .. live).
  std::size_t live = pool.size();
  const auto sample_size = static_cast<std::size_t>(std::max<double>(
      1.0,
      std::ceil(options.c * static_cast<double>(pool.size()) /
                static_cast<double>(rounds))));

  std::vector<double> gains;
  for (std::size_t iter = 0; iter < rounds && live > 0; ++iter) {
    const std::size_t s = std::min(sample_size, live);
    // Partial Fisher-Yates brings a uniform sample into pool[0 .. s).
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t j = i + rng.next_below(live - i);
      std::swap(pool[i], pool[j]);
    }
    gains.resize(s);
    evaluate_gains(oracle, std::span<const ElementId>(pool.data(), s), gains,
                   options.batch);
    double best_gain = 0.0;
    std::size_t best_idx = live;
    for (std::size_t i = 0; i < s; ++i) {
      const double g = gains[i];
      if (best_idx == live || g > best_gain) {
        best_gain = g;
        best_idx = i;
      }
    }
    if (best_idx == live) break;
    if (options.stop_when_no_gain && best_gain <= 0.0) break;

    const double realized = oracle.add(pool[best_idx]);
    result.picks.push_back(pool[best_idx]);
    result.gains.push_back(realized);
    result.gained += realized;
    // Remove the pick from the live range.
    std::swap(pool[best_idx], pool[live - 1]);
    --live;
  }
  return result;
}

GreedyResult random_subset(SubmodularOracle& oracle,
                           std::span<const ElementId> candidates,
                           std::size_t budget, util::Rng& rng) {
  const std::vector<ElementId> pool = unique_candidates(candidates);
  const std::size_t take = std::min(budget, pool.size());

  GreedyResult result;
  result.picks.reserve(take);
  result.gains.reserve(take);
  for (const std::uint64_t i :
       rng.sample_without_replacement(pool.size(), take)) {
    const ElementId x = pool[i];
    const double realized = oracle.add(x);
    result.picks.push_back(x);
    result.gains.push_back(realized);
    result.gained += realized;
  }
  return result;
}

}  // namespace bds
