#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

namespace bds {

namespace {

// One threshold's sieve: its own oracle (carrying its partial solution).
struct Sieve {
  std::unique_ptr<SubmodularOracle> oracle;
  std::vector<ElementId> picks;
};

}  // namespace

SieveStreamingResult sieve_streaming(const SubmodularOracle& proto,
                                     std::span<const ElementId> stream,
                                     const SieveStreamingConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("sieve streaming: k must be positive");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("sieve streaming: epsilon in (0,1)");
  }
  const double base = 1.0 + config.epsilon;

  SieveStreamingResult result;
  // Sieves keyed by integer i with threshold tau = base^i. Lazily
  // instantiated when the running singleton max m makes i relevant
  // (m <= base^i <= 2k·m), dropped when it falls out of range.
  std::map<long, Sieve> sieves;
  double singleton_max = 0.0;
  std::uint64_t evals = 0;

  auto tau_of = [&](long i) { return std::pow(base, double(i)); };

  for (const ElementId x : stream) {
    // Update the running estimate with f({x}).
    {
      auto probe = proto.clone();
      const double fx = probe->gain(x);
      ++evals;
      singleton_max = std::max(singleton_max, fx);
    }
    if (singleton_max <= 0.0) continue;

    // Relevant threshold window: m <= tau <= 2k·m.
    const long lo = static_cast<long>(
        std::ceil(std::log(singleton_max) / std::log(base) - 1e-12));
    const long hi = static_cast<long>(std::floor(
        std::log(2.0 * double(config.k) * singleton_max) / std::log(base) +
        1e-12));

    // Drop sieves below the window (their threshold is now provably too
    // small to ever be the best); instantiate missing ones.
    for (auto it = sieves.begin(); it != sieves.end();) {
      it = (it->first < lo) ? sieves.erase(it) : std::next(it);
    }
    for (long i = lo; i <= hi; ++i) {
      if (sieves.find(i) == sieves.end()) {
        sieves.emplace(i, Sieve{proto.clone(), {}});
      }
    }

    // Offer x to every sieve.
    for (auto& [i, sieve] : sieves) {
      if (sieve.picks.size() >= config.k) continue;
      const double tau = tau_of(i);
      const double need =
          (tau / 2.0 - sieve.oracle->value()) /
          static_cast<double>(config.k - sieve.picks.size());
      const double gain = sieve.oracle->gain(x);
      ++evals;
      if (gain >= need && gain > 0.0) {
        sieve.oracle->add(x);
        ++evals;
        sieve.picks.push_back(x);
      }
    }

    std::uint64_t held = 0;
    for (const auto& [i, sieve] : sieves) held += sieve.picks.size();
    result.peak_memory_items = std::max(result.peak_memory_items, held);
  }

  // Best sieve wins (result starts at value 0 / empty, which any sieve
  // with positive value beats).
  for (auto& [i, sieve] : sieves) {
    if (sieve.oracle->value() > result.value) {
      result.value = sieve.oracle->value();
      result.solution = sieve.picks;
    }
  }
  result.sieves_alive = sieves.size();
  result.oracle_evals = evals;
  return result;
}

}  // namespace bds
