#include "core/bicriteria.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/greedy.h"
#include "core/machine_runner.h"
#include "dist/cluster.h"
#include "dist/partitioner.h"
#include "util/rng.h"
#include "util/timer.h"

namespace bds {

namespace {

std::size_t ceil_to_size(double v) {
  return static_cast<std::size_t>(std::ceil(std::max(0.0, v)));
}

// The paper's default machine count (footnote 3): balance the per-machine
// shard (n/m items) against the coordinator's gather (m·k' items).
std::size_t default_machines(std::size_t ground_size,
                             std::size_t machine_budget) {
  if (ground_size == 0) return 1;
  const double ratio = static_cast<double>(ground_size) /
                       static_cast<double>(std::max<std::size_t>(1,
                                                                 machine_budget));
  return std::max<std::size_t>(1, ceil_to_size(std::sqrt(ratio)));
}

}  // namespace

BicriteriaPlan plan_bicriteria(const BicriteriaConfig& config,
                               std::size_t ground_size) {
  if (config.k == 0) {
    throw std::invalid_argument("bicriteria: k must be positive");
  }
  if (config.rounds == 0) {
    throw std::invalid_argument("bicriteria: rounds must be positive");
  }

  BicriteriaPlan plan;
  plan.rounds = config.rounds;

  if (config.mode == BicriteriaMode::kPractical) {
    const std::size_t out =
        config.output_items == 0 ? config.k : config.output_items;
    if (out < config.rounds) {
      throw std::invalid_argument(
          "bicriteria (practical): output_items must be >= rounds");
    }
    plan.alpha = 0.0;
    plan.multiplicity = 1;
    plan.machine_budget = out / config.rounds;  // last round adds out % r
    plan.central_budget = plan.machine_budget;
    plan.output_bound = out;
    plan.machines = config.machines != 0
                        ? config.machines
                        : default_machines(ground_size, plan.machine_budget);
    return plan;
  }

  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("bicriteria: epsilon must be in (0, 1)");
  }
  const double r = static_cast<double>(config.rounds);
  const double alpha = 3.0 / std::pow(config.epsilon, 1.0 / r);
  const double ln_a = std::log(alpha);
  const auto k = static_cast<double>(config.k);

  plan.alpha = alpha;
  plan.machine_budget = ceil_to_size(alpha * k);

  switch (config.mode) {
    case BicriteriaMode::kTheory:
      plan.multiplicity = 1;
      plan.central_budget = ceil_to_size((alpha * alpha * ln_a * ln_a + ln_a) * k);
      plan.output_bound = config.rounds * plan.central_budget;
      break;
    case BicriteriaMode::kMultiplicity:
      plan.multiplicity = std::max<std::size_t>(1, ceil_to_size(alpha * ln_a));
      plan.central_budget = ceil_to_size((alpha * ln_a * ln_a + ln_a) * k);
      plan.output_bound = config.rounds * plan.central_budget;
      break;
    case BicriteriaMode::kHybrid:
      plan.multiplicity = std::max<std::size_t>(1, ceil_to_size(alpha * ln_a));
      // Coordinator adopts S1 (machine_budget items) and then greedily adds
      // k·lnα more, for (α + lnα)k per round.
      plan.central_budget = ceil_to_size(ln_a * k);
      plan.output_bound =
          config.rounds * (plan.machine_budget + plan.central_budget);
      break;
    case BicriteriaMode::kPractical:
      break;  // handled above
  }

  if (config.machines != 0) {
    plan.machines = config.machines;
  } else {
    // Analysis needs m >= α·lnα machines; also keep the coordinator/worker
    // load balance of footnote 3.
    plan.machines = std::max<std::size_t>(
        ceil_to_size(alpha * ln_a),
        default_machines(ground_size, plan.machine_budget));
  }
  // Multiplicity beyond the machine count is meaningless.
  plan.multiplicity = std::min(plan.multiplicity, plan.machines);
  return plan;
}

DistributedResult bicriteria_greedy(const SubmodularOracle& proto,
                                    std::span<const ElementId> ground,
                                    const BicriteriaConfig& config) {
  const BicriteriaPlan plan = plan_bicriteria(config, ground.size());
  const RuntimeOptions runtime = detail::resolve_runtime(config);

  auto central = detail::make_central_oracle(proto, runtime.incremental_gains);
  dist::Cluster cluster(plan.machines, runtime.cluster_options());
  util::Rng scatter_rng(util::mix64(runtime.seed));

  DistributedResult result;
  GreedyOptions central_options{config.stop_when_no_gain};
  if (runtime.parallel_central) {
    central_options.batch.pool = &cluster.pool();
  }

  for (std::size_t round = 0; round < plan.rounds; ++round) {
    std::size_t machine_budget = plan.machine_budget;
    std::size_t central_budget = plan.central_budget;
    if (config.mode == BicriteriaMode::kPractical &&
        round + 1 == plan.rounds) {
      // Last round absorbs the remainder so the total is exactly `out`.
      const std::size_t out =
          config.output_items == 0 ? config.k : config.output_items;
      const std::size_t rem = out % plan.rounds;
      machine_budget += rem;
      central_budget += rem;
    }

    const dist::Partition partition = dist::partition_multiplicity(
        ground, plan.machines, plan.multiplicity, scatter_rng);

    detail::MachineWorkerConfig worker_config;
    worker_config.selector = config.selector;
    worker_config.stochastic_c = config.stochastic_c;
    worker_config.stop_when_no_gain = config.stop_when_no_gain;
    worker_config.budget = machine_budget;
    worker_config.seed = runtime.seed;
    worker_config.round = round;
    worker_config.central = central.get();
    worker_config.factory = config.machine_oracle_factory
                                ? &config.machine_oracle_factory
                                : nullptr;
    worker_config.worker_oracle = runtime.worker_oracle;

    const std::vector<dist::MachineReport> reports =
        cluster.run_round(partition, detail::make_machine_worker(worker_config));

    // Coordinator filter stage.
    util::Timer central_timer;
    const std::uint64_t evals_before = central->evals();
    std::size_t added = 0;

    if (config.mode == BicriteriaMode::kHybrid) {
      // Adopt S1 wholesale (zero-gain members may be dropped from the
      // reported solution: for monotone f they can never gain later).
      for (const ElementId x : reports.front().summary()) {
        const double g = central->add(x);
        if (g > 0.0 || !config.stop_when_no_gain) {
          result.solution.push_back(x);
          ++added;
        }
      }
      std::vector<ElementId> pool;
      for (std::size_t i = 1; i < reports.size(); ++i) {
        pool.insert(pool.end(), reports[i].summary().begin(),
                    reports[i].summary().end());
      }
      const GreedyResult filtered =
          lazy_greedy(*central, pool, central_budget, central_options);
      result.solution.insert(result.solution.end(), filtered.picks.begin(),
                             filtered.picks.end());
      added += filtered.picks.size();
    } else {
      std::vector<ElementId> pool;
      for (const auto& report : reports) {
        pool.insert(pool.end(), report.summary().begin(),
                    report.summary().end());
      }
      const GreedyResult filtered =
          lazy_greedy(*central, pool, central_budget, central_options);
      result.solution.insert(result.solution.end(), filtered.picks.begin(),
                             filtered.picks.end());
      added += filtered.picks.size();
    }

    cluster.record_central_stage(central->evals() - evals_before,
                                 central_timer.elapsed_seconds(), added);

    RoundTrace trace;
    trace.round = round;
    trace.alpha = plan.alpha;
    trace.machines = plan.machines;
    trace.machine_budget = machine_budget;
    trace.central_budget = central_budget;
    trace.items_added = added;
    trace.value_after = central->value();
    result.rounds.push_back(trace);
  }

  result.value = central->value();
  result.stats = cluster.stats();
  return result;
}

}  // namespace bds
