#include "core/bicriteria.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/round_spec.h"
#include "dist/engine.h"

namespace bds {

namespace {

std::size_t ceil_to_size(double v) {
  return static_cast<std::size_t>(std::ceil(std::max(0.0, v)));
}

const char* mode_id(BicriteriaMode mode) {
  switch (mode) {
    case BicriteriaMode::kTheory: return "bicriteria/theory";
    case BicriteriaMode::kMultiplicity: return "bicriteria/multiplicity";
    case BicriteriaMode::kHybrid: return "bicriteria/hybrid";
    case BicriteriaMode::kPractical: return "bicriteria/practical";
  }
  return "bicriteria";
}

}  // namespace

BicriteriaPlan plan_bicriteria(const BicriteriaConfig& config,
                               std::size_t ground_size) {
  if (config.k == 0) {
    throw std::invalid_argument("bicriteria: k must be positive");
  }
  if (config.rounds == 0) {
    throw std::invalid_argument("bicriteria: rounds must be positive");
  }

  BicriteriaPlan plan;
  plan.rounds = config.rounds;

  if (config.mode == BicriteriaMode::kPractical) {
    const std::size_t out =
        config.output_items == 0 ? config.k : config.output_items;
    if (out < config.rounds) {
      throw std::invalid_argument(
          "bicriteria (practical): output_items must be >= rounds");
    }
    plan.alpha = 0.0;
    plan.multiplicity = 1;
    plan.machine_budget = out / config.rounds;  // last round adds out % r
    plan.central_budget = plan.machine_budget;
    plan.output_bound = out;
    plan.machines =
        config.machines != 0
            ? config.machines
            : default_machine_count(ground_size, plan.machine_budget);
    return plan;
  }

  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw std::invalid_argument("bicriteria: epsilon must be in (0, 1)");
  }
  const double r = static_cast<double>(config.rounds);
  const double alpha = 3.0 / std::pow(config.epsilon, 1.0 / r);
  const double ln_a = std::log(alpha);
  const auto k = static_cast<double>(config.k);

  plan.alpha = alpha;
  plan.machine_budget = ceil_to_size(alpha * k);

  switch (config.mode) {
    case BicriteriaMode::kTheory:
      plan.multiplicity = 1;
      plan.central_budget = ceil_to_size((alpha * alpha * ln_a * ln_a + ln_a) * k);
      plan.output_bound = config.rounds * plan.central_budget;
      break;
    case BicriteriaMode::kMultiplicity:
      plan.multiplicity = std::max<std::size_t>(1, ceil_to_size(alpha * ln_a));
      plan.central_budget = ceil_to_size((alpha * ln_a * ln_a + ln_a) * k);
      plan.output_bound = config.rounds * plan.central_budget;
      break;
    case BicriteriaMode::kHybrid:
      plan.multiplicity = std::max<std::size_t>(1, ceil_to_size(alpha * ln_a));
      // Coordinator adopts S1 (machine_budget items) and then greedily adds
      // k·lnα more, for (α + lnα)k per round.
      plan.central_budget = ceil_to_size(ln_a * k);
      plan.output_bound =
          config.rounds * (plan.machine_budget + plan.central_budget);
      break;
    case BicriteriaMode::kPractical:
      break;  // handled above
  }

  if (config.machines != 0) {
    plan.machines = config.machines;
  } else {
    // Analysis needs m >= α·lnα machines; also keep the coordinator/worker
    // load balance of footnote 3.
    plan.machines = std::max<std::size_t>(
        ceil_to_size(alpha * ln_a),
        default_machine_count(ground_size, plan.machine_budget));
  }
  // Multiplicity beyond the machine count is meaningless.
  plan.multiplicity = std::min(plan.multiplicity, plan.machines);
  return plan;
}

RoundProgram make_bicriteria_program(const BicriteriaConfig& config,
                                     const BicriteriaPlan& plan) {
  RoundProgram program;
  program.id = mode_id(config.mode);
  program.machines = plan.machines;
  program.stop_when_no_gain = config.stop_when_no_gain;
  program.oracle_factory = config.machine_oracle_factory
                               ? &config.machine_oracle_factory
                               : nullptr;
  program.next_round =
      [&config, plan](const EngineProgress& progress)
      -> std::optional<RoundSpec> {
    if (progress.round >= plan.rounds) return std::nullopt;

    std::size_t machine_budget = plan.machine_budget;
    std::size_t central_budget = plan.central_budget;
    if (config.mode == BicriteriaMode::kPractical &&
        progress.round + 1 == plan.rounds) {
      // Last round absorbs the remainder so the total is exactly `out`.
      const std::size_t out =
          config.output_items == 0 ? config.k : config.output_items;
      const std::size_t rem = out % plan.rounds;
      machine_budget += rem;
      central_budget += rem;
    }

    RoundSpec spec;
    spec.partition = PartitionStrategy::kMultiplicity;
    spec.multiplicity = plan.multiplicity;
    spec.worker =
        SelectorWorkerSpec{config.selector, config.stochastic_c,
                           config.stop_when_no_gain, machine_budget};
    if (config.mode == BicriteriaMode::kHybrid) {
      spec.filter = AdoptThenGreedyFilterSpec{central_budget};
    } else {
      spec.filter = GreedyFilterSpec{central_budget};
    }
    spec.alpha = plan.alpha;
    spec.machine_budget = machine_budget;
    spec.central_budget = central_budget;
    return spec;
  };
  return program;
}

DistributedResult bicriteria_greedy(const SubmodularOracle& proto,
                                    std::span<const ElementId> ground,
                                    const BicriteriaConfig& config) {
  const BicriteriaPlan plan = plan_bicriteria(config, ground.size());
  const RoundProgram program = make_bicriteria_program(config, plan);
  return run_round_program(proto, ground, program,
                           config.runtime);
}

}  // namespace bds
