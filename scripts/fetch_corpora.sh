#!/usr/bin/env bash
# Fetches the paper's real corpora (SNAP edge lists) and converts them into
# mmap-ready v2 .bds containers with bds_convert, so Table 1 / Figure 1 can
# run at the paper's actual scale instead of on the synthetic stand-ins.
#
# Usage: scripts/fetch_corpora.sh [--with-livejournal] [build-dir]
#
#   corpora/dblp.bds          com-DBLP co-authorship (~1M edges, default)
#   corpora/livejournal.bds   com-LiveJournal (~34M edges, opt-in: large)
#
# The conversion turns each edge list into the paper's neighborhood
# coverage instance (one set per node holding its neighbors). Re-running is
# idempotent: corpora that already converted cleanly are skipped.
#
# Recipes once fetched:
#   build/bench/bench_fig1b  --load=corpora/dblp.bds --mmap
#   build/bench/bench_table1 --load=corpora/dblp.bds --mmap --k 40
#   build/examples/bds_cli --load corpora/dblp.bds --mmap --algorithm bicriteria --k 10
set -euo pipefail

WITH_LJ=0
BUILD=build
for arg in "$@"; do
  case "$arg" in
    --with-livejournal) WITH_LJ=1 ;;
    --help|-h) sed -n '2,19p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) BUILD="$arg" ;;
  esac
done

cd "$(dirname "$0")/.."
CONVERT="$BUILD/examples/bds_convert"
if [ ! -x "$CONVERT" ]; then
  echo "error: $CONVERT not found — build first:" >&2
  echo "  cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

if command -v curl > /dev/null; then
  FETCH="curl -fL --retry 3 -o"
elif command -v wget > /dev/null; then
  FETCH="wget -O"
else
  echo "error: need curl or wget to download corpora" >&2
  exit 1
fi

mkdir -p corpora

# fetch_one <name> <url-of-gzipped-edge-list>
fetch_one() {
  local name="$1" url="$2"
  local out="corpora/$name.bds" txt="corpora/$name.ungraph.txt"
  if [ -f "$out" ]; then
    echo "$out already present — skipping (delete it to re-fetch)"
    return 0
  fi
  if [ ! -f "$txt" ]; then
    echo "fetching $url ..."
    $FETCH "$txt.gz" "$url"
    gunzip -f "$txt.gz"
  fi
  "$CONVERT" "$txt" "$out"
  rm -f "$txt"
  echo "wrote $out"
}

fetch_one dblp "https://snap.stanford.edu/data/bigdata/communities/com-dblp.ungraph.txt.gz"
if [ "$WITH_LJ" = 1 ]; then
  fetch_one livejournal "https://snap.stanford.edu/data/bigdata/communities/com-lj.ungraph.txt.gz"
fi

echo
echo "done. paper-scale runs:"
echo "  $BUILD/bench/bench_fig1b  --load=corpora/dblp.bds --mmap"
echo "  $BUILD/bench/bench_table1 --load=corpora/dblp.bds --mmap --k 40"
