#!/usr/bin/env bash
# Checkpoint/resume equivalence through the real CLI: for each multi-round
# engine-backed algorithm, a run halted after round 1 (writing
# --checkpoint-dir) and resumed from its checkpoint must print exactly the
# same result summary as the uninterrupted run. Complements the in-process
# tests in tests/test_engine.cpp by exercising the file format and flag
# plumbing end-to-end.
#
# Two passes, because resume restarts the lazy-bound store cold (bounds are
# deliberately never checkpointed — see DESIGN.md):
#  * BDS_LAZY=off — the selection AND the exact eval counts must match the
#    uninterrupted run line for line;
#  * default (lazy on) — the selection lines (items, f(S), rounds) must
#    still match bitwise, but a resumed run re-derives the bounds it lost,
#    so eval totals legitimately differ and are excluded.
#
# usage: scripts/check_resume.sh path/to/bds_cli
set -euo pipefail

CLI="${1:?usage: check_resume.sh path/to/bds_cli}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

DATASET=(--dataset synthetic --universe 2000 --planted 40 --decoys 2000
         --seed 3)

summary() {
  # The deterministic lines of the report (drop wall time / eval seconds).
  # $SUMMARY_LINES is the pass-specific subset.
  "$CLI" "${DATASET[@]}" "$@" |
    grep -E "$SUMMARY_LINES"
}

check() {
  local name="$1"
  shift
  echo "== ${name}"
  summary "$@" > "${workdir}/full.txt"
  "$CLI" "${DATASET[@]}" "$@" --checkpoint-dir "${workdir}" \
    --halt-after-round 1 > /dev/null
  summary "$@" --resume "${workdir}/checkpoint.bds" > "${workdir}/resumed.txt"
  diff -u "${workdir}/full.txt" "${workdir}/resumed.txt"
}

check_all() {
  check bicriteria --algorithm bicriteria --k 5 --rounds 3 --output 12
  check hybrid     --algorithm hybrid --k 4 --rounds 3 --eps 0.3
  check naive      --algorithm naive --k 5 --eps 0.1
  check parallel   --algorithm parallel --k 5 --eps 0.3
  check scaling    --algorithm scaling --k 6 --eps 0.25
}

echo "=== pass 1: BDS_LAZY=off (selections and eval counts must match)"
export BDS_LAZY=off
SUMMARY_LINES='items output|f\(S\)|rounds|oracle evals \(total\)'
check_all

echo "=== pass 2: lazy on (selections must match; resumed eval counts may"
echo "===         differ — the bound store restarts cold)"
unset BDS_LAZY
SUMMARY_LINES='items output|f\(S\)|rounds'
check_all

echo "checkpoint/resume: all algorithms reproduce the uninterrupted run"
