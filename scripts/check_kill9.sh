#!/usr/bin/env bash
# SIGKILL-survival through the real process transport: run bds_cli with
# --transport process, kill -9 a randomly chosen bds_worker child while the
# run is in flight, and require that (a) the run still exits 0, (b) the
# verbose execution report records the resulting crash fault and its retry,
# and (c) the deterministic result lines — selection, f(S), rounds, and the
# exact oracle-eval total — match a fault-free golden run on the in-process
# transport. This is the end-to-end form of the wire-level crash tests in
# tests/test_transport.cpp: a real worker death surfaces as a closed
# connection, the coordinator respawns the worker, and the retried attempt
# recomputes the identical pure (machine, shard) result.
#
# The kill is inherently racy against run completion, so the script retries
# the whole run until a kill provably lands mid-run (the report shows a
# retry). A landed kill whose report shows no retry would mean the crash
# was swallowed — that is a failure, not a reason to re-roll.
#
# usage: scripts/check_kill9.sh path/to/bds_cli
set -euo pipefail

CLI="${1:?usage: check_kill9.sh path/to/bds_cli}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Large enough that several rounds of real work are in flight when the kill
# arrives; small enough to stay a smoke test.
DATASET=(--dataset synthetic --universe 20000 --planted 80 --decoys 20000
         --seed 3)
ARGS=(--algorithm bicriteria --k 6 --rounds 4 --output 14 --machines 8)
SUMMARY_LINES='items output|f\(S\)|rounds|oracle evals \(total\)'

echo "== golden (in-process transport, fault-free)"
"$CLI" "${DATASET[@]}" "${ARGS[@]}" |
  grep -E "$SUMMARY_LINES" > "${workdir}/golden.txt"

tries=12
for try in $(seq 1 "$tries"); do
  "$CLI" "${DATASET[@]}" "${ARGS[@]}" --transport process --verbose \
    > "${workdir}/run.txt" 2>&1 &
  cli=$!

  # Workers are forked lazily at first use, so spin until one exists, then
  # pick a victim at random.
  victim=""
  for _ in $(seq 1 2000); do
    workers=($(pgrep -P "$cli" bds_worker 2> /dev/null || true))
    if [ "${#workers[@]}" -gt 0 ]; then
      victim="${workers[RANDOM % ${#workers[@]}]}"
      kill -9 "$victim" 2> /dev/null || victim=""
      break
    fi
    kill -0 "$cli" 2> /dev/null || break
    sleep 0.01
  done

  if ! wait "$cli"; then
    echo "bds_cli exited nonzero after SIGKILL (try ${try}):" >&2
    cat "${workdir}/run.txt" >&2
    exit 1
  fi
  if [ -z "$victim" ]; then
    echo "try ${try}: run finished before a worker could be killed; retrying"
    continue
  fi
  if ! grep -qE 'faults: [0-9]+ injected, [1-9][0-9]* retries' \
      "${workdir}/run.txt"; then
    echo "try ${try}: SIGKILL'd pid ${victim} after its last use" \
         "(no retry recorded); retrying"
    continue
  fi

  echo "try ${try}: SIGKILL'd worker pid ${victim} mid-run"
  grep -E 'faults: ' "${workdir}/run.txt"
  grep -E "$SUMMARY_LINES" "${workdir}/run.txt" > "${workdir}/killed.txt"
  diff -u "${workdir}/golden.txt" "${workdir}/killed.txt"
  echo "kill -9: the retried run reproduced the golden answer"
  exit 0
done

echo "failed to land a SIGKILL mid-run in ${tries} tries" >&2
exit 1
