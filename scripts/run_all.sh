#!/usr/bin/env bash
# Full pipeline: configure, build, test, regenerate every experiment.
# Usage: scripts/run_all.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
cd "$(dirname "$0")/.."

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
